#include <gtest/gtest.h>

#include <algorithm>

#include "ft/evaluator.hpp"
#include "ft/fault_tree.hpp"
#include "ft/parser.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

TEST(FaultTree, BuildCountsAndLookup) {
  const fault_tree ft = testing::example1_static();
  EXPECT_EQ(ft.num_basic_events(), 5u);
  EXPECT_EQ(ft.num_gates(), 4u);
  EXPECT_EQ(ft.size(), 9u);
  EXPECT_NE(ft.find("PUMP1"), fault_tree::npos);
  EXPECT_EQ(ft.find("nonsense"), fault_tree::npos);
  EXPECT_EQ(ft.node(ft.top()).name, "COOLING");
}

TEST(FaultTree, RejectsDuplicateNames) {
  fault_tree ft;
  ft.add_basic_event("x", 0.1);
  EXPECT_THROW(ft.add_basic_event("x", 0.2), model_error);
  EXPECT_THROW(ft.add_gate("x", gate_type::or_gate), model_error);
}

TEST(FaultTree, RejectsBadProbability) {
  fault_tree ft;
  EXPECT_THROW(ft.add_basic_event("x", -0.1), model_error);
  EXPECT_THROW(ft.add_basic_event("y", 1.1), model_error);
}

TEST(FaultTree, RejectsBasicEventAsTop) {
  fault_tree ft;
  const node_index b = ft.add_basic_event("b", 0.5);
  EXPECT_THROW(ft.set_top(b), model_error);
}

TEST(FaultTree, ValidateRequiresTop) {
  fault_tree ft;
  const node_index b = ft.add_basic_event("b", 0.5);
  ft.add_gate("g", gate_type::or_gate, {b});
  EXPECT_THROW(ft.validate(), model_error);
}

TEST(FaultTree, DetectsCycles) {
  fault_tree ft;
  const node_index b = ft.add_basic_event("b", 0.5);
  const node_index g1 = ft.add_gate("g1", gate_type::or_gate, {b});
  const node_index g2 = ft.add_gate("g2", gate_type::or_gate, {g1});
  ft.add_input(g1, g2);  // cycle g1 -> g2 -> g1
  ft.set_top(g2);
  EXPECT_THROW(ft.validate(), model_error);
}

TEST(FaultTree, DuplicateInputsIgnored) {
  fault_tree ft;
  const node_index b = ft.add_basic_event("b", 0.5);
  const node_index g = ft.add_gate("g", gate_type::and_gate, {b, b});
  EXPECT_EQ(ft.node(g).inputs.size(), 1u);
}

TEST(FaultTree, EvaluateMatchesGateSemantics) {
  const fault_tree ft = testing::example1_static();
  std::vector<char> scenario(ft.size(), 0);
  const node_index a = ft.find("a");
  const node_index d = ft.find("d");

  // {a, d} is a failure scenario (Example 1).
  scenario[a] = scenario[d] = 1;
  EXPECT_TRUE(ft.fails(ft.top(), scenario));

  // {a} alone is not: pump 2 still works.
  scenario[d] = 0;
  EXPECT_FALSE(ft.fails(ft.top(), scenario));

  // {e} alone fails the tank and thus the system.
  scenario[a] = 0;
  scenario[ft.find("e")] = 1;
  EXPECT_TRUE(ft.fails(ft.top(), scenario));
}

TEST(FaultTree, ConstantGates) {
  fault_tree ft;
  const node_index t = ft.add_gate("true_gate", gate_type::and_gate);
  const node_index f = ft.add_gate("false_gate", gate_type::or_gate);
  const node_index top = ft.add_gate("top", gate_type::or_gate, {t, f});
  ft.set_top(top);
  const std::vector<char> scenario(ft.size(), 0);
  EXPECT_TRUE(ft.fails(t, scenario));
  EXPECT_FALSE(ft.fails(f, scenario));
  EXPECT_TRUE(ft.fails(top, scenario));
}

TEST(FaultTree, TopoOrderRespectsDependencies) {
  const fault_tree ft = testing::example1_static();
  const auto order = ft.topo_order();
  EXPECT_EQ(order.size(), ft.size());
  std::vector<std::size_t> position(ft.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (node_index n = 0; n < ft.size(); ++n) {
    for (node_index child : ft.node(n).inputs) {
      EXPECT_LT(position[child], position[n]);
    }
  }
}

TEST(FaultTree, DescendantsOfSharedDag) {
  fault_tree ft;
  const node_index x = ft.add_basic_event("x", 0.1);
  const node_index y = ft.add_basic_event("y", 0.1);
  const node_index shared = ft.add_gate("shared", gate_type::or_gate, {x});
  const node_index g1 = ft.add_gate("g1", gate_type::or_gate, {shared, y});
  const node_index g2 = ft.add_gate("g2", gate_type::or_gate, {shared});
  ft.set_top(ft.add_gate("top", gate_type::and_gate, {g1, g2}));

  auto desc = ft.descendants(g2);
  std::sort(desc.begin(), desc.end());
  EXPECT_EQ(desc, (std::vector<node_index>{x, shared, g2}));
}

TEST(FaultTree, BruteForceMatchesExample1) {
  const fault_tree ft = testing::example1_static();
  // p(FT) = 1 - (1-p_e) * (1 - p_pump1 * p_pump2) where
  // p_pump = 1 - (1-p_fts)(1-p_fio).
  const double p_pump =
      1.0 - (1.0 - testing::p_fts) * (1.0 - testing::p_fio);
  const double expected =
      1.0 - (1.0 - testing::p_tank) * (1.0 - p_pump * p_pump);
  EXPECT_NEAR(ft.probability_brute_force(), expected, 1e-15);
}

TEST(FaultTree, ScenarioProbabilityOfExample1) {
  // p({a, d}) from Example 1: a and d fail, everything else works.
  const double p = testing::p_fts * testing::p_fio *
                   (1 - testing::p_fio) * (1 - testing::p_fts) *
                   (1 - testing::p_tank);
  EXPECT_NEAR(p, 2.988e-6, 5e-9);
}

TEST(Evaluator, MatchesFaultTreeEvaluate) {
  const fault_tree ft = testing::example1_static();
  const ft_evaluator eval(ft);
  std::vector<char> scenario(ft.size(), 0);
  scenario[ft.find("b")] = 1;
  scenario[ft.find("c")] = 1;
  std::vector<char> out;
  eval.evaluate(scenario, out);
  const auto expected = ft.evaluate(scenario);
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()));
  EXPECT_TRUE(out[ft.top()]);
}

TEST(Parser, RoundTripsExample1) {
  const fault_tree ft = testing::example1_static();
  const std::string text = write_fault_tree(ft);
  const fault_tree parsed = parse_fault_tree_string(text);
  EXPECT_EQ(parsed.num_basic_events(), ft.num_basic_events());
  EXPECT_EQ(parsed.num_gates(), ft.num_gates());
  EXPECT_EQ(parsed.node(parsed.top()).name, "COOLING");
  EXPECT_NEAR(parsed.probability_brute_force(),
              ft.probability_brute_force(), 1e-18);
}

TEST(Parser, SupportsForwardReferencesAndComments) {
  const fault_tree ft = parse_fault_tree_string(
      "# tiny model\n"
      "top sys\n"
      "or sys g1 x  # trailing comment\n"
      "and g1 y z\n"
      "be x 0.1\n"
      "be y 0.2\n"
      "be z 0.3\n");
  EXPECT_EQ(ft.num_basic_events(), 3u);
  EXPECT_NEAR(ft.probability_brute_force(), 1 - (1 - .1) * (1 - .2 * .3),
              1e-15);
}

TEST(Parser, ReportsLineNumbers) {
  try {
    parse_fault_tree_string("be x 0.1\nbe y nonsense\n");
    FAIL() << "expected parse error";
  } catch (const model_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsUndefinedChildAndMissingTop) {
  EXPECT_THROW(parse_fault_tree_string("or g missing\ntop g\n"), model_error);
  EXPECT_THROW(parse_fault_tree_string("be x 0.1\n"), model_error);
  EXPECT_THROW(parse_fault_tree_string("be x 0.1\nor g x\ntop x\n"),
               model_error);
}

}  // namespace
}  // namespace sdft
