// Structure-cache tests: the canonical signature keys structure only
// (parameters excluded), engine hits replay stages 1b-2 bit-identically,
// envelope dominance decides reuse exactly, and both engine-owned caches
// stay LRU-bounded. The Concurrent* tests hammer the shared caches from
// many threads and are the TSan targets of the suite.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/struct_cache.hpp"
#include "gen/bwr.hpp"
#include "test_models.hpp"
#include "util/lru.hpp"

namespace sdft {
namespace {

using namespace sdft::testing;

std::vector<cutset> cutset_list(const analysis_result& result) {
  std::vector<cutset> out;
  out.reserve(result.cutsets.size());
  for (const auto& q : result.cutsets) out.push_back(q.events);
  return out;
}

sd_fault_tree bwr_tree() {
  bwr_options opt;
  opt.dynamic_events = true;
  opt.repair_rate = 0.1;
  return make_bwr_model(with_bwr_triggers(opt, 2));
}

TEST(StructuralSignature, IgnoresParameters) {
  const sd_fault_tree base = example3_sd();
  sd_fault_tree reparam = example3_sd();
  reparam.structure().set_probability(reparam.structure().find("a"), 0.42);
  // Different CTMC rates are parameters too.
  const sd_fault_tree rerate = example3_sd(2e-3, 1e-2);
  const prep_options prep;
  EXPECT_EQ(structural_signature(base, prep),
            structural_signature(reparam, prep));
  EXPECT_EQ(structural_signature(base, prep),
            structural_signature(rerate, prep));
}

TEST(StructuralSignature, SensitiveToStructureAndPrep) {
  const sd_fault_tree base = example3_sd();
  const prep_options prep;

  // Another gate wiring: swap the top OR for an AND.
  sd_fault_tree other = example3_sd();
  {
    sd_fault_tree rebuilt;
    const node_index a = rebuilt.add_static_event("a", p_fts);
    const node_index e = rebuilt.add_static_event("e", p_tank);
    rebuilt.set_top(rebuilt.add_gate("top", gate_type::and_gate, {a, e}));
    rebuilt.validate();
    EXPECT_NE(structural_signature(base, prep),
              structural_signature(rebuilt, prep));
  }

  // The prep configuration is part of the key (it decides the prep tree
  // cached entries carry).
  prep_options no_prep;
  no_prep.enabled = false;
  EXPECT_NE(structural_signature(base, prep),
            structural_signature(base, no_prep));

  // Static/dynamic partition matters even with identical wiring: example3
  // vs. a clone whose dynamic event b became a static event.
  sd_fault_tree partition;
  {
    const node_index a = partition.add_static_event("a", p_fts);
    const node_index b = partition.add_static_event("b", 0.01);
    const node_index c = partition.add_static_event("c", p_fts);
    const node_index d = partition.add_dynamic_event(
        "d", example2_pump2(1e-3, 5e-2));
    const node_index e = partition.add_static_event("e", p_tank);
    const node_index pump1 =
        partition.add_gate("PUMP1", gate_type::or_gate, {a, b});
    const node_index pump2 =
        partition.add_gate("PUMP2", gate_type::or_gate, {c, d});
    const node_index pumps =
        partition.add_gate("PUMPS", gate_type::and_gate, {pump1, pump2});
    partition.set_top(
        partition.add_gate("COOLING", gate_type::or_gate, {e, pumps}));
    partition.set_trigger(pump1, d);
    partition.validate();
  }
  EXPECT_NE(structural_signature(base, prep),
            structural_signature(partition, prep));
}

TEST(StructureCache, RepeatRunHitsAndMatches) {
  analysis_options opts;
  opts.horizon = 24.0;
  const sd_fault_tree tree = example3_sd();
  analysis_engine engine(opts);

  const analysis_result first = engine.run(tree);
  EXPECT_EQ(first.stats.struct_cache_hits, 0u);
  EXPECT_EQ(first.stats.struct_cache_misses, 1u);
  EXPECT_EQ(engine.structures().size(), 1u);

  const analysis_result second = engine.run(tree);
  EXPECT_EQ(second.stats.struct_cache_hits, 1u);
  EXPECT_EQ(second.stats.struct_cache_misses, 0u);
  EXPECT_EQ(second.failure_probability, first.failure_probability);
  EXPECT_EQ(cutset_list(second), cutset_list(first));
}

TEST(StructureCache, ReparameterizedHitBitIdenticalToFreshEngine) {
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 0.0;  // complete list: reusable for any parameter point
  const sd_fault_tree base = bwr_tree();
  analysis_engine warm(opts);
  (void)warm.run(base);

  // Perturb several static probabilities (both up and down — with a
  // complete list the envelope never blocks reuse).
  sd_fault_tree perturbed = base;
  fault_tree& ft = perturbed.structure();
  ft.set_probability(ft.find("DG1_FTS"), 0.05);
  ft.set_probability(ft.find("CST"), 1e-7);

  const analysis_result hit = warm.run(perturbed);
  EXPECT_EQ(hit.stats.struct_cache_hits, 1u);

  analysis_engine cold(opts);
  const analysis_result fresh = cold.run(perturbed);
  EXPECT_EQ(hit.failure_probability, fresh.failure_probability);
  EXPECT_EQ(cutset_list(hit), cutset_list(fresh));
  EXPECT_EQ(hit.num_cutsets, fresh.num_cutsets);
}

TEST(StructureCache, CutoffRefilterBitIdenticalToFreshEngine) {
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-12;
  const sd_fault_tree base = bwr_tree();
  analysis_engine warm(opts);
  const analysis_result first = warm.run(base);
  ASSERT_GT(first.num_cutsets, 0u);

  // Lowered probabilities stay inside the envelope: the hit re-filters
  // the cached list and must reproduce a fresh run's list bit for bit
  // (some cutsets drop below the cutoff at the new point).
  sd_fault_tree lowered = base;
  fault_tree& ft = lowered.structure();
  ft.set_probability(ft.find("DG1_FTS"), 8e-4);
  ft.set_probability(ft.find("DG2_FTS"), 8e-4);

  const analysis_result hit = warm.run(lowered);
  EXPECT_EQ(hit.stats.struct_cache_hits, 1u);

  analysis_engine cold(opts);
  const analysis_result fresh = cold.run(lowered);
  EXPECT_EQ(hit.failure_probability, fresh.failure_probability);
  EXPECT_EQ(cutset_list(hit), cutset_list(fresh));
}

TEST(StructureCache, EscapedEnvelopeRegenerates) {
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-12;
  const sd_fault_tree base = bwr_tree();
  analysis_engine engine(opts);
  (void)engine.run(base);

  // A raised probability escapes the stored envelope: cached list may
  // miss cutsets that are now relevant, so the engine must regenerate —
  // and still produce the fresh-engine result.
  sd_fault_tree raised = base;
  fault_tree& ft = raised.structure();
  ft.set_probability(ft.find("DG1_FTS"), 0.5);

  const analysis_result miss = engine.run(raised);
  EXPECT_EQ(miss.stats.struct_cache_hits, 0u);
  EXPECT_EQ(miss.stats.struct_cache_misses, 1u);

  analysis_engine cold(opts);
  const analysis_result fresh = cold.run(raised);
  EXPECT_EQ(miss.failure_probability, fresh.failure_probability);
  EXPECT_EQ(cutset_list(miss), cutset_list(fresh));

  // The entry was re-anchored at the raised point, so repeating it hits.
  const analysis_result again = engine.run(raised);
  EXPECT_EQ(again.stats.struct_cache_hits, 1u);
  EXPECT_EQ(again.failure_probability, fresh.failure_probability);
}

TEST(StructureCache, TighterCutoffRegenerates) {
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-10;
  const sd_fault_tree tree = bwr_tree();
  analysis_engine engine(opts);
  (void)engine.run(tree);

  // cutoff' < gen_cutoff: the cached list may lack cutsets the tighter
  // run keeps, so reuse is forbidden.
  analysis_options tighter = opts;
  tighter.cutoff = 1e-14;
  const analysis_result miss = engine.run(tree, tighter);
  EXPECT_EQ(miss.stats.struct_cache_hits, 0u);

  analysis_engine cold(tighter);
  const analysis_result fresh = cold.run(tree);
  EXPECT_EQ(miss.failure_probability, fresh.failure_probability);
  EXPECT_EQ(cutset_list(miss), cutset_list(fresh));

  // The looser original cutoff now reuses the tighter entry (gen_cutoff
  // 1e-14 <= 1e-10) and re-filters to the original list.
  const analysis_result loose = engine.run(tree, opts);
  EXPECT_EQ(loose.stats.struct_cache_hits, 1u);
  analysis_engine cold_loose(opts);
  EXPECT_EQ(loose.failure_probability,
            cold_loose.run(tree).failure_probability);
}

TEST(StructureCache, PrimeMakesFirstRunHit) {
  analysis_options opts;
  opts.horizon = 24.0;
  const sd_fault_tree tree = example3_sd();
  analysis_engine engine(opts);
  engine.prime(tree);
  EXPECT_EQ(engine.structures().size(), 1u);

  const analysis_result r = engine.run(tree);
  EXPECT_EQ(r.stats.struct_cache_hits, 1u);
  EXPECT_EQ(r.failure_probability, analyze(tree, opts).failure_probability);
}

TEST(StructureCache, ExactStaticOnHitMatchesFreshEngine) {
  analysis_options opts;
  opts.horizon = 24.0;
  opts.exact_static = true;
  const sd_fault_tree base = example3_sd();
  analysis_engine warm(opts);
  const analysis_result first = warm.run(base);
  ASSERT_GT(first.exact_static_probability, 0.0);

  sd_fault_tree perturbed = base;
  perturbed.structure().set_probability(perturbed.structure().find("a"),
                                        1e-4);
  const analysis_result hit = warm.run(perturbed);
  EXPECT_EQ(hit.stats.struct_cache_hits, 1u);

  analysis_engine cold(opts);
  const analysis_result fresh = cold.run(perturbed);
  EXPECT_EQ(hit.exact_static_probability, fresh.exact_static_probability);
  EXPECT_EQ(hit.failure_probability, fresh.failure_probability);
}

TEST(StructureCache, DisabledOptionBypassesCache) {
  analysis_options opts;
  opts.use_structure_cache = false;
  const sd_fault_tree tree = example3_sd();
  analysis_engine engine(opts);
  (void)engine.run(tree);
  (void)engine.run(tree);
  EXPECT_EQ(engine.structures().size(), 0u);
  EXPECT_EQ(engine.structures().hits(), 0u);
  EXPECT_EQ(engine.structures().misses(), 0u);
}

TEST(StructureCache, LruEvictionBound) {
  analysis_options opts;
  opts.structure_cache_entries = 1;
  analysis_engine engine(opts);
  const sd_fault_tree first = example3_sd();
  const sd_fault_tree second = bwr_tree();

  (void)engine.run(first);
  (void)engine.run(second);  // evicts `first`
  EXPECT_EQ(engine.structures().size(), 1u);
  EXPECT_EQ(engine.structures().evictions(), 1u);

  const analysis_result refill = engine.run(first);  // miss again
  EXPECT_EQ(refill.stats.struct_cache_hits, 0u);
  EXPECT_EQ(engine.structures().evictions(), 2u);
  EXPECT_EQ(refill.failure_probability,
            analyze(first, engine.options()).failure_probability);
}

TEST(LruMap, InsertFindEvict) {
  lru_map<std::string, int> map(2);
  EXPECT_TRUE(map.insert("a", 1));
  EXPECT_TRUE(map.insert("b", 2));
  ASSERT_NE(map.find("a"), nullptr);  // refreshes a's recency
  EXPECT_EQ(*map.find("a"), 1);
  EXPECT_TRUE(map.insert("c", 3));  // evicts b (least recent)
  EXPECT_EQ(map.find("b"), nullptr);
  EXPECT_NE(map.find("a"), nullptr);
  EXPECT_NE(map.find("c"), nullptr);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.evictions(), 1u);
  // Duplicate insert keeps the first value (first writer wins).
  EXPECT_FALSE(map.insert("a", 99));
  EXPECT_EQ(*map.find("a"), 1);
  // assign() overwrites.
  map.assign("a", 7);
  EXPECT_EQ(*map.find("a"), 7);
  // Shrinking the capacity evicts immediately.
  map.set_capacity(1);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.evictions(), 2u);
}

TEST(QuantCache, LruBoundHolds) {
  analysis_options opts;
  opts.horizon = 24.0;
  opts.quant_cache_entries = 2;
  const sd_fault_tree tree = bwr_tree();
  analysis_engine engine(opts);
  const analysis_result r = engine.run(tree);
  EXPECT_LE(engine.cache().size(), 2u);
  if (r.stats.cache_misses > 2) {
    EXPECT_GT(engine.cache().evictions(), 0u);
    EXPECT_EQ(r.stats.cache_evictions, engine.cache().evictions());
  }
  // Eviction can only cost re-solves, never change results.
  analysis_options unbounded = opts;
  unbounded.quant_cache_entries = quantification_cache::default_capacity;
  EXPECT_EQ(r.failure_probability,
            analyze(tree, unbounded).failure_probability);
}

TEST(StructureCacheConcurrent, ParallelRunsShareOneEngine) {
  // TSan target: many threads run perturbed analyses against one engine;
  // all share one cached structure, and every result must equal the
  // fresh-engine reference for its parameter point.
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 0.0;
  opts.inline_execution = true;  // each thread runs its pipeline inline
  const sd_fault_tree base = example3_sd();
  analysis_engine engine(opts);
  engine.prime(base);

  constexpr int kThreads = 8;
  constexpr int kRounds = 10;
  std::vector<double> results(kThreads * kRounds, -1.0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        sd_fault_tree perturbed = base;
        fault_tree& ft = perturbed.structure();
        ft.set_probability(ft.find("a"), 1e-3 * (1 + (t + round) % 5));
        results[static_cast<std::size_t>(t * kRounds + round)] =
            engine.run(perturbed).failure_probability;
      }
    });
  }
  for (std::thread& w : workers) w.join();

  analysis_options serial = opts;
  serial.inline_execution = false;
  for (int t = 0; t < kThreads; ++t) {
    for (int round = 0; round < kRounds; ++round) {
      sd_fault_tree perturbed = base;
      fault_tree& ft = perturbed.structure();
      ft.set_probability(ft.find("a"), 1e-3 * (1 + (t + round) % 5));
      EXPECT_EQ(results[static_cast<std::size_t>(t * kRounds + round)],
                analyze(perturbed, serial).failure_probability)
          << "thread " << t << " round " << round;
    }
  }
}

TEST(StructureCacheConcurrent, MixedStructuresUnderTinyCapacity) {
  // Eviction racing against concurrent hits: two distinct structures
  // thrash a capacity-1 cache from many threads. Entries are shared_ptr,
  // so a run keeps quantifying against an entry evicted mid-flight.
  analysis_options opts;
  opts.horizon = 12.0;
  opts.structure_cache_entries = 1;
  opts.inline_execution = true;
  const sd_fault_tree first = example3_sd();
  const sd_fault_tree second = bwr_tree();
  analysis_engine engine(opts);

  const double ref_first = analyze(first, opts).failure_probability;
  const double ref_second = analyze(second, opts).failure_probability;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 6; ++round) {
        const bool use_first = (t + round) % 2 == 0;
        const double p =
            engine.run(use_first ? first : second).failure_probability;
        if (p != (use_first ? ref_first : ref_second)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(engine.structures().size(), 1u);
  EXPECT_GT(engine.structures().evictions(), 0u);
}

}  // namespace
}  // namespace sdft
