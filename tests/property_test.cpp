// Property-based tests on randomly generated SD fault trees: the pipeline
// is checked against the exact product semantics, and the FT-bar
// translation against the structural minimal cutsets (paper §V-B1).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/analyzer.hpp"
#include "ctmc/triggered.hpp"
#include "mcs/mocus.hpp"
#include "product/product_ctmc.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "sdft/translate.hpp"
#include "test_models.hpp"

namespace sdft {
namespace {

using testing::make_random_sd_tree;
using testing::random_sd_tree;

class RandomSdTrees : public ::testing::TestWithParam<int> {};

TEST_P(RandomSdTrees, TranslationRefinesStructuralCutsets) {
  const random_sd_tree r =
      make_random_sd_tree(0x5d + static_cast<std::uint64_t>(GetParam()));
  const static_translation tr = translate_to_static(r.tree, 12.0);
  auto bar_cutsets = mocus(tr.ft_bar).cutsets;
  std::vector<cutset> mapped;
  for (auto& c : bar_cutsets) {
    cutset m;
    for (node_index b : c) m.push_back(tr.to_sd.at(b));
    std::sort(m.begin(), m.end());
    mapped.push_back(std::move(m));
  }

  // FT-bar folds the triggering requirements into the cutsets: every
  // FT-bar MCS must (a) structurally fail the top gate and (b) for each of
  // its triggered events also contain a cause for the trigger. (a) is
  // equivalent to containing some structural MCS.
  const auto structural = mocus(r.tree.structure()).cutsets;
  const auto& ft = r.tree.structure();
  for (const auto& c : mapped) {
    std::vector<char> scenario(ft.size(), 0);
    for (node_index b : c) scenario[b] = 1;
    EXPECT_TRUE(ft.fails(ft.top(), scenario));
    for (node_index b : c) {
      const node_index trig = r.tree.trigger_gate_of(b);
      if (trig != fault_tree::npos) {
        EXPECT_TRUE(ft.fails(trig, scenario))
            << "triggered event without trigger cause in cutset";
      }
    }
  }

  // Without triggered events the translation is the identity on cutsets.
  if (r.num_triggered == 0) {
    EXPECT_EQ(minimize_cutsets(std::move(mapped)), structural);
  }
}

TEST_P(RandomSdTrees, PipelineOverApproximatesExactSemantics) {
  const random_sd_tree r =
      make_random_sd_tree(0x5d + static_cast<std::uint64_t>(GetParam()));
  const double t = 12.0;
  analysis_options opts;
  opts.horizon = t;
  opts.threads = 2;
  const analysis_result result = analyze(r.tree, opts);
  for (const auto& q : result.cutsets) EXPECT_TRUE(q.error.empty()) << q.error;

  const double exact = exact_failure_probability(r.tree, t);
  // Rare-event sum over all cutsets is an over-approximation (paper §V
  // property iii; with these event probabilities the slack is bounded by
  // the pairwise products, so a generous factor suffices as an upper
  // sanity bound).
  EXPECT_GE(result.failure_probability, exact - 1e-9)
      << "seed " << GetParam();
  EXPECT_LE(result.failure_probability, 8.0 * exact + 1e-9)
      << "seed " << GetParam();
}

TEST_P(RandomSdTrees, ApproximationModesBracketClassified) {
  const random_sd_tree r =
      make_random_sd_tree(0x9e1 + static_cast<std::uint64_t>(GetParam()));
  analysis_options opts;
  opts.horizon = 12.0;
  opts.mode = approx_mode::under_approximate;
  const double under = analyze(r.tree, opts).failure_probability;
  opts.mode = approx_mode::as_classified;
  const double classified = analyze(r.tree, opts).failure_probability;
  opts.mode = approx_mode::over_approximate;
  const double over = analyze(r.tree, opts).failure_probability;
  EXPECT_LE(under, classified + 1e-12) << "seed " << GetParam();
  EXPECT_GE(over, classified - 1e-12) << "seed " << GetParam();
}

TEST_P(RandomSdTrees, BackendsAgreeOnCutsetsAndProbability) {
  // The MOCUS and BDD cutset sources must produce the same relevant
  // minimal cutsets and, through the engine, the same rare-event sum.
  const random_sd_tree r =
      make_random_sd_tree(0x5d + static_cast<std::uint64_t>(GetParam()));
  analysis_options opts;
  opts.horizon = 12.0;
  opts.backend = cutset_backend::mocus;
  const analysis_result via_mocus = analyze(r.tree, opts);
  opts.backend = cutset_backend::bdd;
  const analysis_result via_bdd = analyze(r.tree, opts);
  EXPECT_EQ(via_mocus.num_cutsets, via_bdd.num_cutsets)
      << "seed " << GetParam();
  auto events = [](const analysis_result& result) {
    std::vector<cutset> out;
    for (const auto& q : result.cutsets) out.push_back(q.events);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(events(via_mocus), events(via_bdd)) << "seed " << GetParam();
  EXPECT_NEAR(via_mocus.failure_probability, via_bdd.failure_probability,
              1e-12)
      << "seed " << GetParam();
}

TEST_P(RandomSdTrees, HorizonMonotonicity) {
  const random_sd_tree r =
      make_random_sd_tree(0x111 + static_cast<std::uint64_t>(GetParam()));
  double last = -1.0;
  for (double t : {2.0, 8.0, 32.0}) {
    const double p = exact_failure_probability(r.tree, t);
    // Non-strict up to solver accuracy: purely static trees are flat in t.
    EXPECT_GE(p, last - 1e-9) << "t=" << t << " seed " << GetParam();
    last = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSdTrees, ::testing::Range(0, 20));

}  // namespace
}  // namespace sdft
