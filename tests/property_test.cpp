// Property-based tests on randomly generated SD fault trees: the pipeline
// is checked against the exact product semantics, and the FT-bar
// translation against the structural minimal cutsets (paper §V-B1).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/analyzer.hpp"
#include "ctmc/triggered.hpp"
#include "mcs/mocus.hpp"
#include "product/product_ctmc.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "sdft/translate.hpp"
#include "util/rng.hpp"

namespace sdft {
namespace {

/// Random SD fault tree with a guaranteed-acyclic trigger structure:
/// the events are split into a "source" half (static + untriggered
/// dynamic, combined by a random subtree) and a "target" half (whose
/// dynamic events may be triggered by gates of the source subtree).
struct random_sd_tree {
  sd_fault_tree tree;
  std::size_t num_triggered = 0;
};

random_sd_tree make_random_sd_tree(std::uint64_t seed) {
  rng random(seed);
  random_sd_tree out;
  sd_fault_tree& tree = out.tree;

  const auto random_gate_type = [&] {
    return random.chance(0.5) ? gate_type::and_gate : gate_type::or_gate;
  };

  // Source half: 3 leaves (static or untriggered dynamic), 2 gates.
  std::vector<node_index> source_pool;
  for (int i = 0; i < 3; ++i) {
    if (random.chance(0.5)) {
      source_pool.push_back(tree.add_static_event(
          "s" + std::to_string(i), random.uniform(0.02, 0.3)));
    } else {
      source_pool.push_back(tree.add_dynamic_event(
          "x" + std::to_string(i),
          make_repairable(random.uniform(0.02, 0.1),
                          random.chance(0.5) ? random.uniform(0.0, 0.3)
                                             : 0.0)));
    }
  }
  std::vector<node_index> source_gates;
  for (int g = 0; g < 2; ++g) {
    std::vector<node_index> inputs;
    for (int i = 0, n = static_cast<int>(random.between(2, 3)); i < n; ++i) {
      inputs.push_back(source_pool[random.below(source_pool.size())]);
    }
    const node_index gate = tree.add_gate("sg" + std::to_string(g),
                                          random_gate_type(), inputs);
    source_pool.push_back(gate);
    source_gates.push_back(gate);
  }

  // Target half: 3 leaves, dynamic ones may be triggered by source gates.
  std::vector<node_index> target_pool;
  for (int i = 0; i < 3; ++i) {
    const int kind = static_cast<int>(random.between(0, 2));
    if (kind == 0) {
      target_pool.push_back(tree.add_static_event(
          "t" + std::to_string(i), random.uniform(0.02, 0.3)));
    } else if (kind == 1) {
      target_pool.push_back(tree.add_dynamic_event(
          "y" + std::to_string(i),
          make_repairable(random.uniform(0.02, 0.1),
                          random.uniform(0.0, 0.3))));
    } else {
      const node_index e = tree.add_dynamic_event(
          "z" + std::to_string(i),
          make_erlang_triggered(static_cast<int>(random.between(1, 2)),
                                random.uniform(0.02, 0.1),
                                random.uniform(0.0, 0.3), 100.0));
      tree.set_trigger(source_gates[random.below(source_gates.size())], e);
      target_pool.push_back(e);
      ++out.num_triggered;
    }
  }
  std::vector<node_index> target_gates;
  for (int g = 0; g < 2; ++g) {
    std::vector<node_index> inputs;
    for (int i = 0, n = static_cast<int>(random.between(2, 3)); i < n; ++i) {
      inputs.push_back(target_pool[random.below(target_pool.size())]);
    }
    const node_index gate = tree.add_gate("tg" + std::to_string(g),
                                          random_gate_type(), inputs);
    target_pool.push_back(gate);
    target_gates.push_back(gate);
  }

  tree.set_top(tree.add_gate(
      "top", random_gate_type(),
      {source_gates.back(), target_gates.back()}));
  tree.validate();
  return out;
}

class RandomSdTrees : public ::testing::TestWithParam<int> {};

TEST_P(RandomSdTrees, TranslationRefinesStructuralCutsets) {
  const random_sd_tree r =
      make_random_sd_tree(0x5d + static_cast<std::uint64_t>(GetParam()));
  const static_translation tr = translate_to_static(r.tree, 12.0);
  auto bar_cutsets = mocus(tr.ft_bar).cutsets;
  std::vector<cutset> mapped;
  for (auto& c : bar_cutsets) {
    cutset m;
    for (node_index b : c) m.push_back(tr.to_sd.at(b));
    std::sort(m.begin(), m.end());
    mapped.push_back(std::move(m));
  }

  // FT-bar folds the triggering requirements into the cutsets: every
  // FT-bar MCS must (a) structurally fail the top gate and (b) for each of
  // its triggered events also contain a cause for the trigger. (a) is
  // equivalent to containing some structural MCS.
  const auto structural = mocus(r.tree.structure()).cutsets;
  const auto& ft = r.tree.structure();
  for (const auto& c : mapped) {
    std::vector<char> scenario(ft.size(), 0);
    for (node_index b : c) scenario[b] = 1;
    EXPECT_TRUE(ft.fails(ft.top(), scenario));
    for (node_index b : c) {
      const node_index trig = r.tree.trigger_gate_of(b);
      if (trig != fault_tree::npos) {
        EXPECT_TRUE(ft.fails(trig, scenario))
            << "triggered event without trigger cause in cutset";
      }
    }
  }

  // Without triggered events the translation is the identity on cutsets.
  if (r.num_triggered == 0) {
    EXPECT_EQ(minimize_cutsets(std::move(mapped)), structural);
  }
}

TEST_P(RandomSdTrees, PipelineOverApproximatesExactSemantics) {
  const random_sd_tree r =
      make_random_sd_tree(0x5d + static_cast<std::uint64_t>(GetParam()));
  const double t = 12.0;
  analysis_options opts;
  opts.horizon = t;
  opts.threads = 2;
  const analysis_result result = analyze(r.tree, opts);
  for (const auto& q : result.cutsets) EXPECT_TRUE(q.error.empty()) << q.error;

  const double exact = exact_failure_probability(r.tree, t);
  // Rare-event sum over all cutsets is an over-approximation (paper §V
  // property iii; with these event probabilities the slack is bounded by
  // the pairwise products, so a generous factor suffices as an upper
  // sanity bound).
  EXPECT_GE(result.failure_probability, exact - 1e-9)
      << "seed " << GetParam();
  EXPECT_LE(result.failure_probability, 8.0 * exact + 1e-9)
      << "seed " << GetParam();
}

TEST_P(RandomSdTrees, ApproximationModesBracketClassified) {
  const random_sd_tree r =
      make_random_sd_tree(0x9e1 + static_cast<std::uint64_t>(GetParam()));
  analysis_options opts;
  opts.horizon = 12.0;
  opts.mode = approx_mode::under_approximate;
  const double under = analyze(r.tree, opts).failure_probability;
  opts.mode = approx_mode::as_classified;
  const double classified = analyze(r.tree, opts).failure_probability;
  opts.mode = approx_mode::over_approximate;
  const double over = analyze(r.tree, opts).failure_probability;
  EXPECT_LE(under, classified + 1e-12) << "seed " << GetParam();
  EXPECT_GE(over, classified - 1e-12) << "seed " << GetParam();
}

TEST_P(RandomSdTrees, BackendsAgreeOnCutsetsAndProbability) {
  // The MOCUS and BDD cutset sources must produce the same relevant
  // minimal cutsets and, through the engine, the same rare-event sum.
  const random_sd_tree r =
      make_random_sd_tree(0x5d + static_cast<std::uint64_t>(GetParam()));
  analysis_options opts;
  opts.horizon = 12.0;
  opts.backend = cutset_backend::mocus;
  const analysis_result via_mocus = analyze(r.tree, opts);
  opts.backend = cutset_backend::bdd;
  const analysis_result via_bdd = analyze(r.tree, opts);
  EXPECT_EQ(via_mocus.num_cutsets, via_bdd.num_cutsets)
      << "seed " << GetParam();
  auto events = [](const analysis_result& result) {
    std::vector<cutset> out;
    for (const auto& q : result.cutsets) out.push_back(q.events);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(events(via_mocus), events(via_bdd)) << "seed " << GetParam();
  EXPECT_NEAR(via_mocus.failure_probability, via_bdd.failure_probability,
              1e-12)
      << "seed " << GetParam();
}

TEST_P(RandomSdTrees, HorizonMonotonicity) {
  const random_sd_tree r =
      make_random_sd_tree(0x111 + static_cast<std::uint64_t>(GetParam()));
  double last = -1.0;
  for (double t : {2.0, 8.0, 32.0}) {
    const double p = exact_failure_probability(r.tree, t);
    // Non-strict up to solver accuracy: purely static trees are flat in t.
    EXPECT_GE(p, last - 1e-9) << "t=" << t << " seed " << GetParam();
    last = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSdTrees, ::testing::Range(0, 20));

}  // namespace
}  // namespace sdft
