#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/ft_bdd.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"
#include "util/rng.hpp"

namespace sdft {
namespace {

TEST(Bdd, TerminalAndVarBasics) {
  bdd_manager m;
  EXPECT_NE(m.zero(), m.one());
  const bdd_ref x = m.var(0);
  EXPECT_EQ(m.var(0), x);  // unique table canonicalises
  EXPECT_EQ(m.bdd_and(x, m.one()), x);
  EXPECT_EQ(m.bdd_and(x, m.zero()), m.zero());
  EXPECT_EQ(m.bdd_or(x, m.zero()), x);
  EXPECT_EQ(m.bdd_or(x, m.one()), m.one());
}

TEST(Bdd, AndOrAreCanonical) {
  bdd_manager m;
  const bdd_ref x = m.var(0);
  const bdd_ref y = m.var(1);
  EXPECT_EQ(m.bdd_and(x, y), m.bdd_and(y, x));
  EXPECT_EQ(m.bdd_or(x, y), m.bdd_or(y, x));
  // Distributivity: x & (y | x) == x.
  EXPECT_EQ(m.bdd_and(x, m.bdd_or(y, x)), x);
}

TEST(Bdd, NotIsInvolutive) {
  bdd_manager m;
  const bdd_ref x = m.var(0);
  const bdd_ref y = m.var(1);
  const bdd_ref f = m.bdd_or(m.bdd_and(x, y), m.bdd_not(y));
  EXPECT_EQ(m.bdd_not(m.bdd_not(f)), f);
  EXPECT_EQ(m.bdd_or(f, m.bdd_not(f)), m.one());
  EXPECT_EQ(m.bdd_and(f, m.bdd_not(f)), m.zero());
}

TEST(Bdd, RestrictFixesVariables) {
  bdd_manager m;
  const bdd_ref x = m.var(0);
  const bdd_ref y = m.var(1);
  const bdd_ref f = m.bdd_and(x, y);
  EXPECT_EQ(m.restrict_var(f, 0, true), y);
  EXPECT_EQ(m.restrict_var(f, 0, false), m.zero());
  EXPECT_EQ(m.restrict_var(f, 1, true), x);
}

TEST(Bdd, ProbabilityShannon) {
  bdd_manager m;
  const bdd_ref x = m.var(0);
  const bdd_ref y = m.var(1);
  const std::vector<double> p{0.3, 0.5};
  EXPECT_NEAR(m.probability(m.bdd_and(x, y), p), 0.15, 1e-15);
  EXPECT_NEAR(m.probability(m.bdd_or(x, y), p), 0.65, 1e-15);
  EXPECT_NEAR(m.probability(m.one(), p), 1.0, 1e-15);
  EXPECT_NEAR(m.probability(m.zero(), p), 0.0, 1e-15);
}

TEST(Bdd, MinimalSolutionsOfRedundantFunction) {
  bdd_manager m;
  const bdd_ref x = m.var(0);
  const bdd_ref y = m.var(1);
  // f = x | (x & y): the only minimal solution is {x}.
  const bdd_ref f = m.bdd_or(x, m.bdd_and(x, y));
  const auto products = m.enumerate_products(m.minimal_solutions(f));
  ASSERT_EQ(products.size(), 1u);
  EXPECT_EQ(products[0], (std::vector<std::uint32_t>{0}));
}

TEST(FtBdd, ExactProbabilityMatchesBruteForce) {
  const fault_tree ft = testing::example1_static();
  const ft_bdd compiled(ft);
  EXPECT_NEAR(compiled.probability(), ft.probability_brute_force(), 1e-15);
}

TEST(FtBdd, ProbabilityWithOverrides) {
  const fault_tree ft = testing::example1_static();
  const ft_bdd compiled(ft);
  // Setting the tank to certainty makes the system fail with certainty.
  EXPECT_NEAR(compiled.probability({{ft.find("e"), 1.0}}), 1.0, 1e-15);
  // Setting it to zero leaves only the pump contribution.
  const double p_pump =
      1.0 - (1.0 - testing::p_fts) * (1.0 - testing::p_fio);
  EXPECT_NEAR(compiled.probability({{ft.find("e"), 0.0}}), p_pump * p_pump,
              1e-15);
}

TEST(FtBdd, MinimalCutsetsMatchMocus) {
  const fault_tree ft = testing::example1_static();
  const ft_bdd compiled(ft);
  EXPECT_EQ(compiled.minimal_cutsets(), mocus(ft).cutsets);
}

TEST(FtBdd, CompilesFromSubtreeRoot) {
  const fault_tree ft = testing::example1_static();
  const ft_bdd pump1(ft, ft.find("PUMP1"));
  const double expected =
      1.0 - (1.0 - testing::p_fts) * (1.0 - testing::p_fio);
  EXPECT_NEAR(pump1.probability(), expected, 1e-15);
}

fault_tree random_tree(rng& random, int num_events, int num_gates) {
  fault_tree ft;
  std::vector<node_index> pool;
  for (int i = 0; i < num_events; ++i) {
    pool.push_back(ft.add_basic_event("e" + std::to_string(i),
                                      random.uniform(0.05, 0.4)));
  }
  node_index last = fault_tree::npos;
  for (int g = 0; g < num_gates; ++g) {
    std::vector<node_index> inputs;
    for (int i = 0, n = static_cast<int>(random.between(2, 4)); i < n; ++i) {
      inputs.push_back(pool[random.below(pool.size())]);
    }
    last = ft.add_gate("g" + std::to_string(g),
                       random.chance(0.5) ? gate_type::and_gate
                                          : gate_type::or_gate,
                       inputs);
    pool.push_back(last);
  }
  ft.set_top(last);
  return ft;
}

class BddRandomTrees : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomTrees, AgreesWithBruteForceAndMocus) {
  rng random(0xb00 + static_cast<std::uint64_t>(GetParam()));
  const fault_tree ft = random_tree(random, 9, 7);
  const ft_bdd compiled(ft);
  EXPECT_NEAR(compiled.probability(), ft.probability_brute_force(), 1e-12);
  EXPECT_EQ(compiled.minimal_cutsets(), mocus(ft).cutsets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomTrees, ::testing::Range(0, 25));

}  // namespace
}  // namespace sdft
