// Property and differential tests of the packed-bitset cutset kernel:
// exhaustive word-boundary checks of packed_bitset, randomized differential
// runs against a std::set<int> oracle, and seeded cutset-family minimize
// runs asserting the packed minimize_cutsets() is bit-identical both to the
// pre-packing counting implementation (kept as minimize_cutsets_reference)
// and to a direct O(n^2) std::includes oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "mcs/cutset.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace sdft {
namespace {

// Widths straddling the 64-bit word boundaries; 0 is the valid empty set.
const std::size_t kBoundaryWidths[] = {0, 1, 63, 64, 65, 128};

TEST(PackedBitset, StartsEmptyAtEveryBoundaryWidth) {
  for (const std::size_t width : kBoundaryWidths) {
    const packed_bitset b(width);
    EXPECT_EQ(b.size(), width);
    EXPECT_EQ(b.num_words(), (width + 63) / 64);
    EXPECT_EQ(b.count(), 0u);
    EXPECT_TRUE(b.none());
    EXPECT_FALSE(b.any());
    for (std::size_t i = 0; i < width; ++i) EXPECT_FALSE(b.test(i));
  }
}

TEST(PackedBitset, SetTestResetEveryBitAtEveryBoundaryWidth) {
  for (const std::size_t width : kBoundaryWidths) {
    packed_bitset b(width);
    for (std::size_t i = 0; i < width; ++i) {
      b.set(i);
      EXPECT_TRUE(b.test(i)) << "width " << width << " bit " << i;
      EXPECT_EQ(b.count(), i + 1);
    }
    EXPECT_EQ(b.count(), width);
    for (std::size_t i = 0; i < width; ++i) {
      b.reset(i);
      EXPECT_FALSE(b.test(i)) << "width " << width << " bit " << i;
    }
    EXPECT_TRUE(b.none());
  }
}

TEST(PackedBitset, LastWordBitsStayIsolatedAcrossTheBoundary) {
  // Setting the first bit of word 1 must not disturb word 0 and vice versa.
  packed_bitset b(65);
  b.set(63);
  b.set(64);
  EXPECT_EQ(b.count(), 2u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.reset(64);
  EXPECT_TRUE(b.none());
}

TEST(PackedBitset, SubsetIntersectAndEqualityBasics) {
  for (const std::size_t width : kBoundaryWidths) {
    packed_bitset empty(width);
    packed_bitset full(width);
    for (std::size_t i = 0; i < width; ++i) full.set(i);
    EXPECT_TRUE(empty.is_subset_of(full));
    EXPECT_TRUE(empty.is_subset_of(empty));
    EXPECT_TRUE(full.is_subset_of(full));
    EXPECT_FALSE(empty.intersects(full));
    if (width > 0) {
      EXPECT_FALSE(full.is_subset_of(empty));
      EXPECT_TRUE(full.intersects(full));
    }
    EXPECT_EQ(empty == full, width == 0);
  }
}

TEST(PackedBitset, ClearKeepsWidth) {
  packed_bitset b(65);
  b.set(0);
  b.set(64);
  b.clear();
  EXPECT_EQ(b.size(), 65u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.hash(), packed_bitset(65).hash());
}

TEST(PackedBitset, ForEachSetVisitsBitsInIncreasingOrder) {
  packed_bitset b(128);
  const std::vector<std::size_t> bits = {0, 1, 62, 63, 64, 65, 100, 127};
  for (std::size_t i : bits) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, bits);
}

TEST(PackedBitset, HashIsContentOnly) {
  // The same final set reached through different set/reset histories must
  // hash identically (the MOCUS visited set relies on this).
  packed_bitset a(128);
  a.set(5);
  a.set(77);
  packed_bitset b(128);
  for (std::size_t i = 0; i < 128; ++i) b.set(i);
  for (std::size_t i = 0; i < 128; ++i) {
    if (i != 5 && i != 77) b.reset(i);
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(packed_bitset_hash{}(a), a.hash());
}

/// The oracle model of a packed_bitset: a std::set of positions.
using oracle_set = std::set<std::size_t>;

oracle_set to_oracle(const packed_bitset& b) {
  oracle_set out;
  b.for_each_set([&](std::size_t i) { out.insert(i); });
  return out;
}

TEST(PackedBitset, RandomizedDifferentialAgainstSetOracle) {
  rng gen(0xb17);
  for (const std::size_t width : {1, 63, 64, 65, 128, 200}) {
    for (int round = 0; round < 40; ++round) {
      packed_bitset a(width);
      packed_bitset b(width);
      oracle_set oa;
      oracle_set ob;
      const std::size_t ops = 3 * width / 2 + 4;
      for (std::size_t step = 0; step < ops; ++step) {
        const std::size_t i = gen.below(width);
        if (gen.below(3) == 0) {
          a.reset(i);
          oa.erase(i);
        } else {
          a.set(i);
          oa.insert(i);
        }
        const std::size_t j = gen.below(width);
        if (gen.below(3) == 0) {
          b.reset(j);
          ob.erase(j);
        } else {
          b.set(j);
          ob.insert(j);
        }
      }
      // Point queries and aggregates.
      EXPECT_EQ(to_oracle(a), oa);
      EXPECT_EQ(to_oracle(b), ob);
      EXPECT_EQ(a.count(), oa.size());
      EXPECT_EQ(a.none(), oa.empty());
      for (std::size_t i = 0; i < width; ++i) {
        EXPECT_EQ(a.test(i), oa.count(i) == 1);
      }
      // Relational queries.
      EXPECT_EQ(a.is_subset_of(b),
                std::includes(ob.begin(), ob.end(), oa.begin(), oa.end()));
      EXPECT_EQ(b.is_subset_of(a),
                std::includes(oa.begin(), oa.end(), ob.begin(), ob.end()));
      oracle_set inter;
      std::set_intersection(oa.begin(), oa.end(), ob.begin(), ob.end(),
                            std::inserter(inter, inter.begin()));
      EXPECT_EQ(a.intersects(b), !inter.empty());
      EXPECT_EQ(a == b, oa == ob);
      if (oa == ob) EXPECT_EQ(a.hash(), b.hash());
      // Bitwise composites against their set-algebra images.
      EXPECT_EQ(to_oracle(a & b), inter);
      oracle_set uni;
      std::set_union(oa.begin(), oa.end(), ob.begin(), ob.end(),
                     std::inserter(uni, uni.begin()));
      EXPECT_EQ(to_oracle(a | b), uni);
    }
  }
}

/// Direct quadratic subsumption oracle: keep a set iff no *other* distinct
/// set (appearing anywhere in the family) is a proper subset of it, then
/// order canonically. Slow but obviously correct.
std::vector<cutset> minimize_by_includes(std::vector<cutset> sets) {
  std::sort(sets.begin(), sets.end(), [](const cutset& a, const cutset& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<cutset> kept;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < sets.size() && !subsumed; ++j) {
      subsumed = j != i && sets[j].size() < sets[i].size() &&
                 std::includes(sets[i].begin(), sets[i].end(),
                               sets[j].begin(), sets[j].end());
    }
    if (!subsumed) kept.push_back(sets[i]);
  }
  return kept;
}

/// A random redundant cutset family: base sets plus supersets, duplicates
/// and permuted copies, over a sparse event universe (sparse indices make
/// the dense-universe packing work for its result).
std::vector<cutset> random_family(rng& gen, std::size_t base_sets,
                                  std::size_t universe, std::size_t stride) {
  std::vector<cutset> out;
  for (std::size_t s = 0; s < base_sets; ++s) {
    cutset c;
    const std::size_t len = 1 + gen.below(4);
    for (std::size_t i = 0; i < len; ++i) {
      c.push_back(static_cast<node_index>(gen.below(universe) * stride));
    }
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    out.push_back(c);
    // Supersets of c (must be subsumed) and a duplicate of c.
    const std::size_t copies = gen.below(3);
    for (std::size_t d = 0; d < copies; ++d) {
      cutset super = c;
      super.push_back(static_cast<node_index>(gen.below(universe) * stride));
      std::sort(super.begin(), super.end());
      super.erase(std::unique(super.begin(), super.end()), super.end());
      out.push_back(std::move(super));
    }
    if (gen.below(2) == 0) out.push_back(c);
  }
  return out;
}

TEST(MinimizeCutsets, DifferentialAgainstReferenceAndIncludesOracle) {
  // 1200 seeded families; the packed implementation must agree with the
  // pre-PR counting implementation bit for bit, and (on the smaller
  // families) with the direct quadratic oracle.
  rng gen(0x3b9);
  for (int family = 0; family < 1200; ++family) {
    const std::size_t base = 1 + gen.below(12);
    const std::size_t universe = 2 + gen.below(40);
    const std::size_t stride = 1 + gen.below(9);  // sparse event indices
    std::vector<cutset> sets = random_family(gen, base, universe, stride);
    minimize_stats stats;
    const std::vector<cutset> packed = minimize_cutsets(sets, &stats);
    const std::vector<cutset> reference = minimize_cutsets_reference(sets);
    ASSERT_EQ(packed, reference) << "family " << family;
    ASSERT_EQ(packed, minimize_by_includes(sets)) << "family " << family;
    // Output is canonical: sorted by (size, content), no duplicates.
    for (std::size_t i = 1; i < packed.size(); ++i) {
      const bool ordered =
          packed[i - 1].size() != packed[i].size()
              ? packed[i - 1].size() < packed[i].size()
              : packed[i - 1] < packed[i];
      ASSERT_TRUE(ordered) << "family " << family;
    }
    ASSERT_LE(stats.universe_words,
              (40 * 9 + packed_bitset::bits_per_word - 1) /
                  packed_bitset::bits_per_word);
  }
}

TEST(MinimizeCutsets, EmptyFamilyAndEmptySet) {
  EXPECT_TRUE(minimize_cutsets({}).empty());
  // The empty cutset subsumes everything (constant-failed tree).
  const std::vector<cutset> sets = {{1, 2}, {}, {3}};
  const std::vector<cutset> expect = {{}};
  EXPECT_EQ(minimize_cutsets(sets), expect);
  EXPECT_EQ(minimize_cutsets_reference(sets), expect);
}

TEST(MinimizeCutsets, CountsSubsetTests) {
  // {1} keeps, {1,2} tests against {1} and is subsumed.
  minimize_stats stats;
  const std::vector<cutset> out =
      minimize_cutsets({{1}, {1, 2}}, &stats);
  EXPECT_EQ(out, std::vector<cutset>{{1}});
  EXPECT_EQ(stats.subset_tests, 1u);
  EXPECT_EQ(stats.universe_words, 1u);
}

}  // namespace
}  // namespace sdft
