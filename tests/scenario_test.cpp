// Scenario-engine tests: the .etree parser (round trip, line-numbered
// errors), bit-agreement of the one-pass engine with per-sequence one-shot
// compilations, the CCF beta/alpha closed forms (exact and MCS-approx),
// the UQ layer's seed/thread determinism, and point re-evaluation off the
// compiled structure.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "engine/scenario.hpp"
#include "etree/event_tree.hpp"
#include "etree/scenario.hpp"
#include "ft/ccf.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

/// The small demo scenario most tests share: IE, then two redundant pumps
/// behind an AND, then a backup system. No CCF / UQ unless a test adds it.
std::string demo_text(const std::string& extra = "") {
  return R"(be IE 1e-2
be PUMP_A 2e-3
be PUMP_B 2e-3
be BACKUP 5e-3
be VALVE 1e-3
and SYS1_F PUMP_A PUMP_B
or SYS2_F BACKUP VALVE
or TOP SYS1_F SYS2_F
top TOP

etree DEMO
initiating IE
functional S1 SYS1_F
functional S2 SYS2_F
sequence OK S -
sequence OK F S
sequence CD F F
)" + extra;
}

TEST(ScenarioParser, RoundTrip) {
  const scenario_model m = parse_scenario_string(demo_text(
      "ccf-beta PUMPS 0.1 PUMP_A PUMP_B\n"
      "dist BACKUP lognormal 3\n"
      "dist VALVE uniform 1e-4 1e-2\n"
      "dist IE point\n"));
  EXPECT_EQ(m.scenario.name, "DEMO");
  EXPECT_EQ(m.scenario.initiating_event, "IE");
  ASSERT_EQ(m.scenario.functional.size(), 2u);
  EXPECT_EQ(m.scenario.functional[0].name, "S1");
  EXPECT_EQ(m.scenario.functional[1].gate, "SYS2_F");
  ASSERT_EQ(m.scenario.sequences.size(), 3u);
  EXPECT_EQ(m.scenario.sequences[2].end_state, "CD");
  EXPECT_EQ(m.scenario.sequences[0].outcomes,
            (std::vector<branch_outcome>{branch_outcome::success,
                                         branch_outcome::bypass}));
  ASSERT_EQ(m.scenario.ccf.size(), 1u);
  EXPECT_EQ(m.scenario.ccf[0].members,
            (std::vector<std::string>{"PUMP_A", "PUMP_B"}));
  ASSERT_EQ(m.scenario.distributions.size(), 3u);
  EXPECT_EQ(m.scenario.distributions[0].model,
            parameter_distribution::kind::lognormal);
  EXPECT_NE(m.tree.structure().find("SYS1_F"), fault_tree::npos);
}

TEST(ScenarioParser, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    try {
      (void)parse_scenario_string(text);
      FAIL() << "expected model_error containing '" << fragment << "'";
    } catch (const model_error& e) {
      EXPECT_NE(std::string(e.what()).find("scenario parse error"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  // Bad outcome token: the sequence sits on line 8 of this text.
  expect_error(
      "be IE 1e-2\nbe B 1e-3\nor G B\ntop G\n\netree T\ninitiating IE\n"
      "functional F G\nsequence CD X\n",
      "outcome must be F, S or -");
  expect_error(
      "be IE 1e-2\nbe B 1e-3\nor G B\ntop G\n\netree T\ninitiating IE\n"
      "functional F G\nsequence CD X\n",
      "line 9");
  expect_error("be IE 1e-2\nbe B 1e-3\nor G B\ntop G\n\netree T\nfrobnicate\n",
               "line 7");
  expect_error("be IE 1e-2\nbe B 1e-3\nor G B\ntop G\n",
               "missing 'etree");
}

TEST(ScenarioEngine, MatchesPerSequenceOneShots) {
  // The shared multi-root compilation must not move a single bit relative
  // to one event_tree_bdd per sequence (BDD operations are canonical).
  const scenario_model m = parse_scenario_string(demo_text());
  const fault_tree& ft = m.tree.structure();

  event_tree et(ft, ft.find("IE"), "DEMO");
  et.add_functional_event("S1", ft.find("SYS1_F"));
  et.add_functional_event("S2", ft.find("SYS2_F"));
  for (const auto& s : m.scenario.sequences) {
    et.add_sequence(s.outcomes, s.end_state);
  }

  const scenario_result r = run_scenario(m);
  ASSERT_EQ(r.sequences.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(r.sequences[s].probability, sequence_probability_exact(et, s))
        << "sequence " << s;
  }
  ASSERT_EQ(r.end_states.size(), 2u);
  EXPECT_EQ(r.end_states[0].name, "OK");
  EXPECT_EQ(r.end_states[0].probability,
            end_state_probability_exact(et, "OK"));
  EXPECT_EQ(r.end_states[1].probability,
            end_state_probability_exact(et, "CD"));
  EXPECT_EQ(r.initiating_probability, 1e-2);
  // Sequences partition {IE occurs}.
  EXPECT_NEAR(r.sequences[0].probability + r.sequences[1].probability +
                  r.sequences[2].probability,
              1e-2, 1e-15);
  EXPECT_EQ(r.stats.scenario_sequences, 3u);
  EXPECT_GE(r.stats.scenario_prefix_hits, 1u);
}

TEST(ScenarioEngine, CcfBetaFactorClosedForm) {
  // Beta-factor on the redundant pumps: each member splits into an
  // independent part (1-beta)Q and the shared group event beta*Q, so
  //   P(SYS1_F) = p_ccf + (1 - p_ccf) * p_i^2.
  scenario_model m = parse_scenario_string(
      demo_text("ccf-beta PUMPS 0.25 PUMP_A PUMP_B\n"));
  const scenario_result r = run_scenario(std::move(m));

  const double q = 2e-3, beta = 0.25;
  const double p_i = (1 - beta) * q, p_ccf = beta * q;
  const double p_sys1 = p_ccf + (1 - p_ccf) * p_i * p_i;
  const double p_sys2 = 1 - (1 - 5e-3) * (1 - 1e-3);
  // Sequence CD = IE and SYS1_F and SYS2_F; the two systems share no
  // events, so the exact probability factorizes.
  EXPECT_NEAR(r.sequences[2].probability, 1e-2 * p_sys1 * p_sys2,
              1e-18);
  EXPECT_EQ(r.stats.ccf_groups, 1u);
  EXPECT_EQ(r.stats.ccf_events_added, 1u);
  EXPECT_EQ(r.stats.ccf_members_expanded, 2u);

  // MCS column: the recombined cutsets of CD are {IE, x, y} for x a SYS1
  // contributor (PUMPS_CCF or the pair of independents) and y a SYS2 one;
  // the rare-event sum is the product of per-system rare-event sums times
  // p(IE).
  const double res1 = p_ccf + p_i * p_i;
  const double res2 = 5e-3 + 1e-3;
  EXPECT_NEAR(r.sequences[2].mcs_probability, 1e-2 * res1 * res2, 1e-18);
  EXPECT_GT(r.sequences[2].num_cutsets, 0u);
}

TEST(ScenarioEngine, CcfAlphaFactorClosedForm) {
  // Alpha-factor, n = 2, non-staggered: Q1 = alpha1/alpha_t * Q and
  // Q2 = 2 alpha2/alpha_t * Q with alpha_t = alpha1 + 2 alpha2.
  scenario_model m = parse_scenario_string(
      demo_text("ccf-alpha PUMPS 0.95,0.05 PUMP_A PUMP_B\n"));
  const scenario_result r = run_scenario(std::move(m));

  const double q = 2e-3, a1 = 0.95, a2 = 0.05;
  const double at = a1 + 2 * a2;
  const double q1 = a1 / at * q, q2 = 2 * a2 / at * q;
  const double p_sys1 = q2 + (1 - q2) * q1 * q1;
  const double p_sys2 = 1 - (1 - 5e-3) * (1 - 1e-3);
  EXPECT_NEAR(r.sequences[2].probability, 1e-2 * p_sys1 * p_sys2, 1e-18);
  EXPECT_NEAR(r.sequences[2].mcs_probability,
              1e-2 * (q2 + q1 * q1) * (5e-3 + 1e-3), 1e-18);
}

TEST(ScenarioEngine, CcfExactVsMcsApproxOrdering) {
  // The rare-event MCS sum must dominate the exact sequence probability
  // (success branches dropped, rare-event >= exact union on positive
  // products) while staying close for these small probabilities.
  scenario_model m = parse_scenario_string(
      demo_text("ccf-beta PUMPS 0.1 PUMP_A PUMP_B\n"));
  const scenario_result r = run_scenario(std::move(m));
  for (const auto& s : r.sequences) {
    if (s.end_state != "CD") continue;
    EXPECT_GE(s.mcs_probability, s.probability - 1e-18) << s.label;
    EXPECT_LT(s.mcs_probability, s.probability * 1.01) << s.label;
  }
}

TEST(ScenarioEngine, UncertaintyIsSeedAndThreadDeterministic) {
  const std::string text = demo_text(
      "dist BACKUP lognormal 3\n"
      "dist PUMP_A uniform 1e-4 1e-2\n");

  scenario_options opts;
  opts.uq_samples = 128;
  opts.uq_seed = 42;
  opts.analysis.threads = 8;
  const scenario_result a =
      run_scenario(parse_scenario_string(text), opts);
  const scenario_result b =
      run_scenario(parse_scenario_string(text), opts);

  scenario_options serial = opts;
  serial.analysis.threads = 1;
  serial.analysis.inline_execution = true;
  const scenario_result c =
      run_scenario(parse_scenario_string(text), serial);

  ASSERT_EQ(a.sequences.size(), 3u);
  for (std::size_t s = 0; s < a.sequences.size(); ++s) {
    // Same seed -> identical bands; counter-based substreams make the
    // draws independent of scheduling, so serial == 8 threads bit for bit.
    EXPECT_EQ(a.sequences[s].uq.mean, b.sequences[s].uq.mean);
    EXPECT_EQ(a.sequences[s].uq.p50, b.sequences[s].uq.p50);
    EXPECT_EQ(a.sequences[s].uq.mean, c.sequences[s].uq.mean);
    EXPECT_EQ(a.sequences[s].uq.p05, c.sequences[s].uq.p05);
    EXPECT_EQ(a.sequences[s].uq.p50, c.sequences[s].uq.p50);
    EXPECT_EQ(a.sequences[s].uq.p95, c.sequences[s].uq.p95);
    // Bands are ordered and non-degenerate on the perturbed sequences.
    EXPECT_LE(a.sequences[s].uq.p05, a.sequences[s].uq.p50);
    EXPECT_LE(a.sequences[s].uq.p50, a.sequences[s].uq.p95);
  }
  // The CD sequence depends on PUMP_A: its band must actually spread.
  EXPECT_LT(a.sequences[2].uq.p05, a.sequences[2].uq.p95);
  EXPECT_EQ(a.stats.uq_samples, 128u);
  EXPECT_EQ(a.stats.uq_parameters, 2u);

  // A different seed must move the bands.
  scenario_options reseeded = opts;
  reseeded.uq_seed = 43;
  const scenario_result d =
      run_scenario(parse_scenario_string(text), reseeded);
  EXPECT_NE(a.sequences[2].uq.mean, d.sequences[2].uq.mean);
}

TEST(ScenarioEngine, UncertaintyCoversCcfParameters) {
  // A distribution on a CCF member propagates through the trace: both the
  // independent parts and the shared event scale with the drawn Q, so the
  // CD band spreads even though the expanded events are derived.
  const std::string text = demo_text(
      "ccf-beta PUMPS 0.1 PUMP_A PUMP_B\n"
      "dist PUMP_A lognormal 5\n");
  scenario_options opts;
  opts.uq_samples = 64;
  const scenario_result r = run_scenario(parse_scenario_string(text), opts);
  EXPECT_LT(r.sequences[2].uq.p05, r.sequences[2].uq.p95);
}

TEST(ScenarioEngine, EvaluatePointsMatchesRebuiltModel) {
  scenario_engine engine(parse_scenario_string(demo_text()));

  sweep_description desc;
  sweep_description::named_point pt;
  pt.overrides.emplace_back("BACKUP", 2e-2);
  desc.points.push_back(pt);
  const auto points = engine.evaluate_points(desc);
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].sequence_probabilities.size(), 3u);

  // A model rebuilt with the overridden probability must agree bit for
  // bit: point evaluation only swaps leaf probabilities under the same
  // compiled structure.
  const scenario_result rebuilt = run_scenario(parse_scenario_string(
      "be IE 1e-2\nbe PUMP_A 2e-3\nbe PUMP_B 2e-3\nbe BACKUP 2e-2\n"
      "be VALVE 1e-3\nand SYS1_F PUMP_A PUMP_B\nor SYS2_F BACKUP VALVE\n"
      "or TOP SYS1_F SYS2_F\ntop TOP\n\netree DEMO\ninitiating IE\n"
      "functional S1 SYS1_F\nfunctional S2 SYS2_F\nsequence OK S -\n"
      "sequence OK F S\nsequence CD F F\n"));
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(points[0].sequence_probabilities[s],
              rebuilt.sequences[s].probability)
        << "sequence " << s;
  }
  ASSERT_EQ(points[0].end_state_probabilities.size(), 2u);
  EXPECT_EQ(points[0].end_state_probabilities[1],
            rebuilt.end_states[1].probability);
}

TEST(ScenarioEngine, RejectsBrokenModels) {
  const auto expect_model_error = [](const std::string& text,
                                     const std::string& fragment) {
    try {
      scenario_engine engine(parse_scenario_string(text));
      FAIL() << "expected model_error containing '" << fragment << "'";
    } catch (const model_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_model_error(
      "be IE 1e-2\nbe B 1e-3\nor G B\ntop G\n\netree T\ninitiating NOPE\n"
      "functional F G\nsequence CD F\n",
      "unknown initiating event");
  expect_model_error(
      "be IE 1e-2\nbe B 1e-3\nor G B\ntop G\n\netree T\ninitiating IE\n"
      "functional F NOPE\nsequence CD F\n",
      "unknown gate");
  expect_model_error(demo_text("ccf-beta PUMPS 0.1 PUMP_A NOPE\n"),
                     "is not a node");
  expect_model_error(demo_text("dist NOPE lognormal 3\n"),
                     "unknown basic event");
  // CCF members lose their basic-event identity after expansion, so they
  // cannot initiate.
  expect_model_error(
      "be IE 1e-2\nbe A 1e-3\nbe B 1e-3\nand G A B\ntop G\n\netree T\n"
      "initiating A\nfunctional F G\nsequence CD F\n"
      "ccf-beta GRP 0.1 A B\n",
      "CCF group members cannot initiate");
}

TEST(ScenarioEngine, BackendAndThreadMatrixIsBitIdentical) {
  // The scenario dimension of the determinism matrix: exact and MCS
  // probabilities must be bit-identical across thread counts and cutset
  // backends (the exact column never touches the backend; the MCS column
  // goes through the engine whose lists are canonical either way).
  const std::string text =
      demo_text("ccf-beta PUMPS 0.1 PUMP_A PUMP_B\n");

  scenario_options ref_opts;
  ref_opts.analysis.threads = 1;
  ref_opts.analysis.inline_execution = true;
  ref_opts.analysis.backend = cutset_backend::mocus;
  const scenario_result reference =
      run_scenario(parse_scenario_string(text), ref_opts);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (cutset_backend backend :
         {cutset_backend::mocus, cutset_backend::bdd}) {
      scenario_options opts;
      opts.analysis.threads = threads;
      opts.analysis.backend = backend;
      const scenario_result r =
          run_scenario(parse_scenario_string(text), opts);
      const std::string label = std::string(to_string(backend)) +
                                " threads=" + std::to_string(threads);
      ASSERT_EQ(r.sequences.size(), reference.sequences.size()) << label;
      for (std::size_t s = 0; s < r.sequences.size(); ++s) {
        EXPECT_EQ(r.sequences[s].probability,
                  reference.sequences[s].probability)
            << label << " sequence " << s;
        EXPECT_EQ(r.sequences[s].mcs_probability,
                  reference.sequences[s].mcs_probability)
            << label << " sequence " << s;
        EXPECT_EQ(r.sequences[s].num_cutsets,
                  reference.sequences[s].num_cutsets)
            << label << " sequence " << s;
      }
      for (std::size_t e = 0; e < r.end_states.size(); ++e) {
        EXPECT_EQ(r.end_states[e].probability,
                  reference.end_states[e].probability)
            << label << " end state " << e;
      }
    }
  }
}

}  // namespace
}  // namespace sdft
