// E5: the paper's Figure 2 — histograms of the number of dynamic basic
// events per minimal cutset, for six levels of dynamic enrichment.
//
// Paper shape being reproduced: with more dynamic events the histogram
// shifts right and grows, but its shape stabilises past ~30-40% dynamic —
// which is why the analysis time plateaus in E4.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  const bench::prepared_model p =
      bench::prepare(bench::model1_options(full));

  std::printf("=== Figure 2: # dynamic events per MCS, model 1 ===\n\n");

  analysis_options aopts;
  aopts.horizon = 24.0;
  aopts.cutoff = bench::paper_cutoff;
  aopts.reference_cutoff = true;  // the paper uses the static cutoff (§VI)
  aopts.keep_cutset_details = false;

  const double fractions[] = {0.1, 0.2, 0.3, 0.4, 0.5, 1.0};
  std::vector<std::vector<std::size_t>> histograms;
  std::size_t max_events = 0;
  for (double fraction : fractions) {
    annotation_options an;
    an.dynamic_fraction = fraction;
    an.trigger_fraction = 0.1;
    an.repair_rate = 0.01;
    const analysis_result r =
        analyze(annotate_dynamic(p.model, p.ranked, an), aopts);
    histograms.push_back(r.dynamic_events_histogram);
    if (!r.dynamic_events_histogram.empty()) {
      max_events =
          std::max(max_events, r.dynamic_events_histogram.size() - 1);
    }
  }

  std::vector<std::string> header{"# dyn events in MCS"};
  for (double fraction : fractions) {
    header.push_back(std::to_string(static_cast<int>(fraction * 100)) +
                     "% dyn");
  }
  text_table table(std::move(header));
  for (std::size_t k = 1; k <= max_events; ++k) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& h : histograms) {
      row.push_back(std::to_string(k < h.size() ? h[k] : 0));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());

  // ASCII rendition of the last histogram (fully dynamic).
  std::printf("fully dynamic model, histogram:\n");
  const auto& h = histograms.back();
  std::size_t peak = 1;
  for (std::size_t k = 1; k < h.size(); ++k) peak = std::max(peak, h[k]);
  for (std::size_t k = 1; k < h.size(); ++k) {
    const int bar = static_cast<int>(60.0 * h[k] / peak);
    std::printf("  %2zu | %-60s %zu\n", k,
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                h[k]);
  }
  return 0;
}
