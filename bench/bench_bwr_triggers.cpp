// E1 + E2: the paper's §VI-A table on the BWR example study.
//
// Paper shape being reproduced:
//   - "no timing" row: the static rare-event frequency;
//   - adding repairs (rates 1/10h, 1/100h, 1/1000h) lowers the frequency
//     monotonically with repair speed;
//   - adding the six triggers cumulatively (FEED&BLEED, RHR, EFW, ECC,
//     SWS, CCW) lowers it further, step by step;
//   - roughly half the cutsets are dynamic, with ~3 dynamic events each of
//     which ~1.8 were added by trigger modelling (paper: 3.02 / 1.78).

#include <cstdio>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "gen/bwr.hpp"
#include "mcs/mocus.hpp"
#include "util/table.hpp"

int main() {
  using namespace sdft;

  std::printf("=== §VI-A: small BWR study, repairs and triggers ===\n\n");

  const sd_fault_tree static_model = make_bwr_model({});
  const auto& ft = static_model.structure();
  mocus_options mopts;
  mopts.cutoff = bench::paper_cutoff;
  const mocus_result static_mcs = mocus(ft, mopts);
  const double static_freq =
      rare_event_probability(ft, static_mcs.cutsets);
  std::printf(
      "model: %zu basic events, %zu gates, %zu MCS above 1e-15 "
      "(paper: 68 / 122 / 11142)\n\n",
      ft.num_basic_events(), ft.num_gates(), static_mcs.cutsets.size());

  analysis_options aopts;
  aopts.horizon = 24.0;
  aopts.cutoff = bench::paper_cutoff;
  aopts.reference_cutoff = true;  // the paper uses the static cutoff (§VI)
  aopts.keep_cutset_details = false;

  text_table table({"setting", "failure freq.", "analysis time"});
  table.add_row({"no timing", sci(static_freq), "-"});

  // Repair-rate sweep, no triggers.
  for (double mttr : {10.0, 100.0, 1000.0}) {
    bwr_options opts;
    opts.dynamic_events = true;
    opts.repair_rate = 1.0 / mttr;
    const analysis_result r = analyze(make_bwr_model(opts), aopts);
    table.add_row({"repair rate 1/" + std::to_string(int(mttr)) + "h",
                   sci(r.failure_probability),
                   duration_str(r.total_seconds)});
  }

  // Cumulative triggers at repair rate 1/100h.
  const char* labels[] = {"+FEED&BLEED trigger", "+RHR trigger",
                          "+EFW trigger",        "+ECC trigger",
                          "+SWS trigger",        "+CCW trigger"};
  analysis_result last;
  for (int count = 1; count <= bwr_num_triggers; ++count) {
    bwr_options opts;
    opts.dynamic_events = true;
    opts.repair_rate = 1.0 / 100.0;
    opts = with_bwr_triggers(opts, count);
    last = analyze(make_bwr_model(opts), aopts);
    table.add_row({labels[count - 1], sci(last.failure_probability),
                   duration_str(last.total_seconds)});
  }
  std::printf("%s\n", table.str().c_str());

  // E2: cutset statistics of the fully dynamic model.
  std::printf("fully dynamic model cutset statistics:\n");
  std::printf("  dynamic MCSs: %zu of %zu (paper: 5449 of 11142)\n",
              last.num_dynamic_cutsets, last.num_cutsets);
  std::printf(
      "  mean dynamic events per dynamic MCS: %.2f (paper: 3.02)\n"
      "  of which added by trigger modelling: %.2f (paper: 1.78)\n",
      last.mean_dynamic_events, last.mean_added_dynamic_events);
  return 0;
}
