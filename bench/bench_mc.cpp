// bench_mc — rare-event benchmark of the Monte-Carlo backend.
//
//   bench_mc [--budget N] [--out FILE]
//
// Two rare-event cases, each comparing estimator families at an equal
// trajectory budget through the engine's `--backend mc` path:
//
//   - industrial_forcing: a downsized synthetic industrial study with its
//     probability ranges scaled down until the top probability sits below
//     1e-9. Crude MC sees no failures at the budget (empty CI); failure
//     forcing must return a CI bracketing the exact-static BDD answer.
//   - redundant_group_splitting: four redundant repairable pumps (AND of
//     exponential failure/repair chains), top probability ~6e-9 at a 100h
//     horizon, exact via the product CTMC. Crude is empty; importance
//     splitting over the structure importance function must bracket.
//
// Also records relative-error-vs-time curves (budget/16, budget/4,
// budget). Writes BENCH_mc.json for CI archival; `obs_check bench-mc`
// asserts the acceptance thresholds (crude empty, both CIs bracketing,
// >= 10x relative-error improvement over crude at equal budget).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "engine/engine.hpp"
#include "gen/industrial.hpp"
#include "product/product_ctmc.hpp"
#include "sim/mc.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace sdft;

const char* arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// The static industrial variant: the downsized study of the determinism
/// tests with every probability range scaled down 30x, which pushes the
/// top probability below 1e-9 (crude MC territory at no realistic budget).
sd_fault_tree industrial_rare_variant() {
  industrial_options gopt;
  gopt.seed = 17;
  gopt.num_frontline_systems = 6;
  gopt.num_support_systems = 2;
  gopt.num_initiating_events = 4;
  gopt.sequences_per_ie = 3;
  gopt.components_per_train = 3;
  gopt.fts_min = 1e-7;
  gopt.fts_max = 1e-4;
  gopt.fio_rate_min = 1.25e-7 / 30;
  gopt.fio_rate_max = 1.25e-4 / 30;
  return sd_fault_tree(generate_industrial(gopt).ft);
}

/// Four redundant repairable pumps: failure 0.002/h, repair 1/h. All four
/// down simultaneously within the horizon is a genuinely dynamic rare
/// event — each pump is almost always repaired long before the next one
/// fails, which is exactly the regime importance splitting is for (and
/// where forcing does nothing: there are no static events to bias).
sd_fault_tree redundant_group() {
  sd_fault_tree tree;
  std::vector<node_index> pumps;
  for (int i = 0; i < 4; ++i) {
    pumps.push_back(tree.add_dynamic_event("pump" + std::to_string(i),
                                           make_repairable(0.002, 1.0)));
  }
  tree.set_top(tree.add_gate("top", gate_type::and_gate, pumps));
  tree.validate();
  return tree;
}

struct campaign {
  sim::mc_result mc;
  double seconds = 0;
};

/// One engine run with the mc backend (the `sdft analyze --backend mc`
/// code path, including derived splitting levels when levels == 0).
campaign run_case(const sd_fault_tree& tree, double horizon,
                  sim::mc_method method, std::size_t trajectories,
                  std::size_t levels) {
  analysis_options opts;
  opts.horizon = horizon;
  opts.backend = cutset_backend::mc;
  opts.mc.method = method;
  opts.mc.trajectories = trajectories;
  opts.mc.seed = 1;
  opts.mc.levels = levels;
  const analysis_result r = analyze(tree, opts);
  return campaign{r.mc, r.stats.mc_seconds};
}

/// What crude MC could claim at this budget: its own relative error when
/// it saw failures, else the rule-of-three bound (95% upper limit 3/N on
/// an all-survivor campaign) relative to the exact answer — the honest
/// finite stand-in for "empty CI" in the improvement ratio.
double crude_effective_rel(const sim::mc_result& crude, std::size_t budget,
                           double exact) {
  if (!crude.empty()) return crude.relative_error;
  return (3.0 / static_cast<double>(budget)) / exact;
}

struct case_spec {
  std::string name;
  sd_fault_tree tree;
  double horizon;
  double exact;
  sim::mc_method rare_method;
  std::size_t levels;  // 0: derive (forcing ignores it)
};

void write_campaign(json::writer& w, const char* key, const campaign& c) {
  w.key(key).begin_object();
  w.key("method").string(sim::to_string(c.mc.method));
  w.key("estimate").number(c.mc.estimate);
  w.key("ci_low").number(c.mc.ci_low);
  w.key("ci_high").number(c.mc.ci_high);
  w.key("relative_error").number(c.mc.relative_error);
  w.key("failures").integer(c.mc.failures);
  w.key("empty").boolean(c.mc.empty());
  w.key("seconds").number(c.seconds);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t budget = 200'000;
  if (const char* v = arg_value(argc, argv, "--budget")) {
    budget = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  const char* out_path = "BENCH_mc.json";
  if (const char* v = arg_value(argc, argv, "--out")) out_path = v;

  std::vector<case_spec> cases;
  {
    case_spec c{"industrial_forcing", industrial_rare_variant(), 24.0, 0.0,
                sim::mc_method::forcing, 0};
    analysis_options opts;
    opts.horizon = c.horizon;
    opts.exact_static = true;
    opts.cutoff = 1e-30;
    c.exact = analyze(c.tree, opts).exact_static_probability;
    cases.push_back(std::move(c));
  }
  {
    case_spec c{"redundant_group_splitting", redundant_group(), 100.0, 0.0,
                sim::mc_method::splitting, 4};
    c.exact = exact_failure_probability(c.tree, c.horizon);
    cases.push_back(std::move(c));
  }

  json::writer w;
  w.begin_object();
  w.key("budget").integer(budget);
  w.key("cases").begin_array();
  bool all_ok = true;
  std::vector<std::string> curve_json;
  for (const case_spec& c : cases) {
    const campaign crude =
        run_case(c.tree, c.horizon, sim::mc_method::crude, budget, 0);
    const campaign rare =
        run_case(c.tree, c.horizon, c.rare_method, budget, c.levels);
    const double crude_rel = crude_effective_rel(crude.mc, budget, c.exact);
    const double improvement =
        rare.mc.relative_error > 0.0 ? crude_rel / rare.mc.relative_error
                                     : 0.0;
    const bool brackets = rare.mc.consistent_with(c.exact);
    all_ok = all_ok && brackets && crude.mc.empty() && improvement >= 10.0;

    std::printf("%s: exact %.4g, budget %zu\n", c.name.c_str(), c.exact,
                budget);
    std::printf("  crude:    %zu failures%s\n", crude.mc.failures,
                crude.mc.empty() ? " (empty CI)" : "");
    std::printf("  %-9s %.4g ci [%.4g, %.4g] rel %.3f  %s, %.0fx vs crude\n",
                (to_string(c.rare_method) + ":").c_str(), rare.mc.estimate,
                rare.mc.ci_low, rare.mc.ci_high, rare.mc.relative_error,
                brackets ? "brackets" : "MISSES", improvement);

    w.begin_object();
    w.key("name").string(c.name);
    w.key("exact").number(c.exact);
    w.key("budget").integer(budget);
    write_campaign(w, "crude", crude);
    write_campaign(w, "rare", rare);
    w.key("crude_effective_relative_error").number(crude_rel);
    w.key("improvement").number(improvement);
    w.end_object();

    // Relative-error-vs-time curve at a quarter of the budget per step.
    for (std::size_t n : {budget / 16, budget / 4, budget}) {
      if (n == 0) continue;
      const campaign point =
          run_case(c.tree, c.horizon, c.rare_method, n, c.levels);
      json::writer cw;
      cw.begin_object();
      cw.key("case").string(c.name);
      cw.key("method").string(sim::to_string(c.rare_method));
      cw.key("trajectories").integer(n);
      cw.key("seconds").number(point.seconds);
      cw.key("relative_error").number(point.mc.relative_error);
      cw.key("estimate").number(point.mc.estimate);
      cw.end_object();
      curve_json.push_back(cw.str());
    }
  }
  w.end_array();
  w.key("curve").begin_array();
  for (const std::string& entry : curve_json) w.raw(entry);
  w.end_array();
  w.end_object();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_mc: cannot write '%s'\n", out_path);
    return 1;
  }
  out << w.str() << '\n';
  std::printf("wrote %s\n", out_path);
  return all_ok ? 0 : 1;
}
