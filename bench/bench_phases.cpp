// E7: the paper's §VI-B phase sweep — total analysis time as the Erlang
// phase count of every dynamic event grows, for both industrial models.
//
// Paper shape being reproduced: time grows steeply (the per-cutset chain
// is exponential in #dyn events with base proportional to the phase
// count), and the model with the heavier triggering structure (model 2)
// is affected more.

#include <cstdio>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  std::printf("=== §VI-B: Erlang phases vs analysis time (t = 24h) ===\n\n");
  text_table table(
      {"Model", "phases", "failure freq.", "analysis time"});

  for (int m = 1; m <= 2; ++m) {
    const bench::prepared_model p = bench::prepare(
        m == 1 ? bench::model1_options(full) : bench::model2_options(full));
    for (int phases : {1, 2, 3}) {
      annotation_options an;
      an.dynamic_fraction = 1.0;
      an.trigger_fraction = 0.1;
      an.repair_rate = 0.01;
      an.phases = phases;
      const sd_fault_tree tree = annotate_dynamic(p.model, p.ranked, an);

      analysis_options aopts;
      aopts.horizon = 24.0;
      aopts.cutoff = bench::paper_cutoff;
      aopts.reference_cutoff = true;  // paper uses the static cutoff (§VI)
      aopts.keep_cutset_details = false;
      const analysis_result r = analyze(tree, aopts);
      table.add_row({std::to_string(m), std::to_string(phases),
                     sci(r.failure_probability),
                     duration_str(r.total_seconds)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "For larger phase counts, only a few selected components should be\n"
      "modelled with non-exponential failure laws (paper's conclusion).\n");
  return 0;
}
