// E3: the paper's §VI-B model-parameter table.
//
//   | Model | #BE   | #gates | #MCS   | MCS generation time |
//   |   1   | 2,995 | 52,213 | 74,130 | 4327s               |
//   |   2   | 2,040 | 56,863 | 76,921 | 16680s              |
//
// The proprietary plant studies are replaced by the synthetic generator
// (see DESIGN.md); the default sizing is bench-friendly, --full approaches
// paper-order counts. The shape to reproduce: MCS generation dominates the
// end-to-end cost and model 2 (more gate structure per event) is the more
// expensive one.
//
// A second table runs the dynamic annotation (§VI-B recipe) through the
// analysis engine and reports the quantification-cache behaviour: the
// MCSs of an industrial study combine a handful of dynamic chains with
// thousands of different static events, so nearly every transient solve
// after the first is a cache hit.

#include <cstdio>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "gen/industrial.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  std::printf("=== §VI-B: industrial model parameters (%s size) ===\n\n",
              full ? "full" : "bench");
  text_table table(
      {"Model", "# BE", "# gates", "# MCS", "MCS generation time",
       "partials"});
  text_table engine_table({"Model", "failure freq.", "dyn. MCS",
                           "quantify time", "cache hits", "cache misses",
                           "hit rate"});
  for (int m = 1; m <= 2; ++m) {
    const industrial_options opts = m == 1
                                        ? bench::model1_options(full)
                                        : bench::model2_options(full);
    const bench::prepared_model p = bench::prepare(opts);
    table.add_row({std::to_string(m),
                   std::to_string(p.model.ft.num_basic_events()),
                   std::to_string(p.model.ft.num_gates()),
                   std::to_string(p.mcs.cutsets.size()),
                   duration_str(p.mcs.seconds),
                   std::to_string(p.mcs.partials_processed)});

    // Annotate with dynamic chains and quantify through the engine.
    annotation_options aopts;
    aopts.dynamic_fraction = 0.3;
    aopts.trigger_fraction = 0.1;
    const sd_fault_tree tree = annotate_dynamic(p.model, p.ranked, aopts);
    analysis_options eopts;
    eopts.horizon = 24.0;
    eopts.cutoff = bench::paper_cutoff;
    eopts.keep_cutset_details = false;
    analysis_engine engine(eopts);
    const analysis_result r = engine.run(tree);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1f%%",
                  100.0 * r.stats.cache_hit_rate());
    engine_table.add_row({std::to_string(m), sci(r.failure_probability),
                          std::to_string(r.num_dynamic_cutsets),
                          duration_str(r.stats.quantify_seconds),
                          std::to_string(r.stats.cache_hits),
                          std::to_string(r.stats.cache_misses), rate});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: model 1 = 2995/52213/74130 @ 4327s, "
              "model 2 = 2040/56863/76921 @ 16680s\n\n");
  std::printf("=== engine quantification with memoised transient solves ===\n\n");
  std::printf("%s\n", engine_table.str().c_str());
  return 0;
}
