// E3: the paper's §VI-B model-parameter table.
//
//   | Model | #BE   | #gates | #MCS   | MCS generation time |
//   |   1   | 2,995 | 52,213 | 74,130 | 4327s               |
//   |   2   | 2,040 | 56,863 | 76,921 | 16680s              |
//
// The proprietary plant studies are replaced by the synthetic generator
// (see DESIGN.md); the default sizing is bench-friendly, --full approaches
// paper-order counts. The shape to reproduce: MCS generation dominates the
// end-to-end cost and model 2 (more gate structure per event) is the more
// expensive one.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  std::printf("=== §VI-B: industrial model parameters (%s size) ===\n\n",
              full ? "full" : "bench");
  text_table table(
      {"Model", "# BE", "# gates", "# MCS", "MCS generation time",
       "partials"});
  for (int m = 1; m <= 2; ++m) {
    const industrial_options opts = m == 1
                                        ? bench::model1_options(full)
                                        : bench::model2_options(full);
    const bench::prepared_model p = bench::prepare(opts);
    table.add_row({std::to_string(m),
                   std::to_string(p.model.ft.num_basic_events()),
                   std::to_string(p.model.ft.num_gates()),
                   std::to_string(p.mcs.cutsets.size()),
                   duration_str(p.mcs.seconds),
                   std::to_string(p.mcs.partials_processed)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: model 1 = 2995/52213/74130 @ 4327s, "
              "model 2 = 2040/56863/76921 @ 16680s\n");
  return 0;
}
