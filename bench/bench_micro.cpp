// E9: google-benchmark micro-kernels for the substrates the pipeline is
// built on: MOCUS vs BDD cutset generation, BDD exact probability,
// uniformised transient analysis, product-chain construction, and the
// per-cutset model build.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bdd/ft_bdd.hpp"
#include "core/mcs_model.hpp"
#include "ctmc/transient.hpp"
#include "ctmc/triggered.hpp"
#include "engine/engine.hpp"
#include "gen/bwr.hpp"
#include "gen/industrial.hpp"
#include "ft/modules.hpp"
#include "mcs/mocus.hpp"
#include "obs/obs.hpp"
#include "prep/prep.hpp"
#include "product/product_ctmc.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace {

using namespace sdft;

const fault_tree& bwr_static() {
  static const fault_tree ft = make_bwr_model({}).structure();
  return ft;
}

const sd_fault_tree& bwr_dynamic() {
  static const sd_fault_tree tree = [] {
    bwr_options opts;
    opts.dynamic_events = true;
    opts.repair_rate = 0.01;
    return make_bwr_model(with_bwr_triggers(opts, bwr_num_triggers));
  }();
  return tree;
}

void bm_mocus_bwr(benchmark::State& state) {
  mocus_options opts;
  opts.cutoff = 1e-15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mocus(bwr_static(), opts).cutsets.size());
  }
}
BENCHMARK(bm_mocus_bwr)->Unit(benchmark::kMillisecond);

void bm_bdd_compile_bwr(benchmark::State& state) {
  for (auto _ : state) {
    const ft_bdd compiled(bwr_static());
    benchmark::DoNotOptimize(compiled.node_count());
  }
}
BENCHMARK(bm_bdd_compile_bwr)->Unit(benchmark::kMillisecond);

void bm_bdd_exact_probability(benchmark::State& state) {
  for (auto _ : state) {
    const ft_bdd compiled(bwr_static());
    benchmark::DoNotOptimize(compiled.probability());
  }
}
BENCHMARK(bm_bdd_exact_probability)->Unit(benchmark::kMillisecond);

void bm_bdd_cutsets_bwr(benchmark::State& state) {
  const ft_bdd compiled(bwr_static());
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.minimal_cutsets().size());
  }
}
BENCHMARK(bm_bdd_cutsets_bwr)->Unit(benchmark::kMillisecond);

void bm_transient_erlang(benchmark::State& state) {
  const int phases = static_cast<int>(state.range(0));
  const ctmc chain = make_erlang_active(phases, 1e-3, 1e-2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reach_failed_probability(chain, 24.0));
  }
}
BENCHMARK(bm_transient_erlang)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void bm_product_chain_mcs(benchmark::State& state) {
  // A representative dynamic cutset of the fully dynamic BWR model:
  // both RHR running-failures plus the triggered FEED&BLEED injection.
  const sd_fault_tree& tree = bwr_dynamic();
  const cutset c{tree.structure().find("IE_TRANSIENT"),
                 tree.structure().find("RHR_T1_FIO"),
                 tree.structure().find("RHR_T2_FIO"),
                 tree.structure().find("FB_FIO")};
  for (auto _ : state) {
    const mcs_model model = build_mcs_model(tree, c);
    benchmark::DoNotOptimize(
        build_product_ctmc(model.tree).num_states());
  }
}
BENCHMARK(bm_product_chain_mcs)->Unit(benchmark::kMicrosecond);

void bm_quantify_mcs(benchmark::State& state) {
  const sd_fault_tree& tree = bwr_dynamic();
  const cutset c{tree.structure().find("IE_TRANSIENT"),
                 tree.structure().find("RHR_T1_FIO"),
                 tree.structure().find("RHR_T2_FIO"),
                 tree.structure().find("FB_FIO")};
  const mcs_model model = build_mcs_model(tree, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantify_mcs_model(model, 24.0));
  }
}
BENCHMARK(bm_quantify_mcs)->Unit(benchmark::kMicrosecond);

// --- Stage-3 fast-path kernels ------------------------------------------
// The CI perf-smoke job runs exactly these via --benchmark_filter=stage3
// and archives the JSON (no thresholds; trend data only).

triggered_ctmc standby_pump(double failure_rate, double repair_rate) {
  triggered_ctmc m;
  m.chain = ctmc(4);
  m.chain.set_initial(0, 1.0);
  m.chain.set_failed(3);
  m.chain.add_rate(2, 3, failure_rate);
  m.chain.add_rate(3, 2, repair_rate);
  m.chain.add_rate(1, 0, repair_rate);
  m.on_state = {0, 0, 1, 1};
  m.to_on = {2, 3, 0, 0};
  m.to_off = {0, 0, 0, 1};
  return m;
}

/// k identical standby trains sharing one trigger gate — the shape the
/// symmetry lumping collapses from 2 * 2^k to 2 * (k + 1) states.
sd_fault_tree standby_trains_tree(std::size_t k) {
  sd_fault_tree tree;
  const node_index primary =
      tree.add_dynamic_event("primary", make_repairable(0.01, 0.05));
  const node_index gp = tree.add_gate("GP", gate_type::or_gate, {primary});
  std::vector<node_index> top_inputs{gp};
  for (std::size_t i = 0; i < k; ++i) {
    const node_index train = tree.add_dynamic_event(
        "train" + std::to_string(i), standby_pump(0.002, 0.05));
    tree.set_trigger(gp, train);
    top_inputs.push_back(train);
  }
  tree.set_top(tree.add_gate("top", gate_type::and_gate, top_inputs));
  tree.validate();
  return tree;
}

void bm_stage3_product_fast(benchmark::State& state) {
  const sd_fault_tree tree =
      standby_trains_tree(static_cast<std::size_t>(state.range(0)));
  const product_options opts;  // lumped + packed (the defaults)
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_product_ctmc(tree, opts).num_states());
  }
}
BENCHMARK(bm_stage3_product_fast)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void bm_stage3_product_baseline(benchmark::State& state) {
  const sd_fault_tree tree =
      standby_trains_tree(static_cast<std::size_t>(state.range(0)));
  product_options opts;
  opts.lump_symmetry = false;
  opts.packed_state_keys = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_product_ctmc(tree, opts).num_states());
  }
}
BENCHMARK(bm_stage3_product_baseline)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void bm_stage3_transient_early_term(benchmark::State& state) {
  product_options popts;
  popts.lump_symmetry = false;  // keep the chain large on purpose
  const product_ctmc product =
      build_product_ctmc(standby_trains_tree(8), popts);
  transient_controls controls;
  controls.early_termination = state.range(0) != 0;
  controls.steady_state_detection = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reach_failed_probability(product.chain, 200.0, 1e-10, controls));
  }
}
BENCHMARK(bm_stage3_transient_early_term)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void bm_stage3_quantify_trains(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  const sd_fault_tree tree = standby_trains_tree(6);
  product_options popts;
  popts.lump_symmetry = fast;
  popts.packed_state_keys = fast;
  transient_controls controls;
  controls.early_termination = fast;
  controls.steady_state_detection = fast;
  for (auto _ : state) {
    const product_ctmc product = build_product_ctmc(tree, popts);
    benchmark::DoNotOptimize(
        reach_failed_probability(product.chain, 96.0, 1e-10, controls));
  }
}
BENCHMARK(bm_stage3_quantify_trains)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// --- Prep rewrite-layer kernels -----------------------------------------
// The CI perf-smoke job runs exactly these via --benchmark_filter=prep and
// archives the JSON as BENCH_prep.json next to BENCH_stage3.json (no
// thresholds; trend data only).

const fault_tree& industrial_static() {
  static const fault_tree ft = generate_industrial({}).ft;
  return ft;
}

void bm_prep_normalise(benchmark::State& state) {
  // Mandatory normalisation only (what prep still does under --no-prep).
  prep_options opts;
  opts.enabled = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(preprocess(industrial_static(), opts).tree.size());
  }
}
BENCHMARK(bm_prep_normalise)->Unit(benchmark::kMicrosecond);

void bm_prep_rewrite(benchmark::State& state) {
  // One rewrite family at a time over the industrial tree: 0 = folding +
  // coalescing, 1 = duplicate merging, 2 = common-argument factoring,
  // 3 = absorption. Isolates each pass's per-fixpoint cost.
  prep_options opts;
  opts.fold = opts.coalesce = state.range(0) == 0;
  opts.merge_duplicates = state.range(0) == 1;
  opts.merge_common_args = state.range(0) == 2;
  opts.absorb = state.range(0) == 3;
  opts.modularize = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(preprocess(industrial_static(), opts).tree.size());
  }
}
BENCHMARK(bm_prep_rewrite)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void bm_prep_full(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(preprocess(industrial_static()).tree.size());
  }
  const prep_result p = preprocess(industrial_static());
  state.counters["prep.nodes_before"] =
      static_cast<double>(p.stats.nodes_before);
  state.counters["prep.nodes_after"] =
      static_cast<double>(p.stats.nodes_after);
  state.counters["prep.modules"] = static_cast<double>(p.stats.modules_found);
  state.counters["prep.passes"] = static_cast<double>(p.stats.passes);
}
BENCHMARK(bm_prep_full)->Unit(benchmark::kMicrosecond);

void bm_prep_find_modules(benchmark::State& state) {
  // The linear-time DFS-timestamp module detection on its own.
  prep_options opts;
  opts.modularize = false;
  const prep_result p = preprocess(industrial_static(), opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_modules(p.tree).size());
  }
}
BENCHMARK(bm_prep_find_modules)->Unit(benchmark::kMicrosecond);

void bm_prep_engine_bwr(benchmark::State& state) {
  // End-to-end A/B on the dynamic BWR study: Arg(0) = prep off (mandatory
  // normalisation only, no modular stage 2), Arg(1) = prep on.
  analysis_options aopts;
  aopts.cutoff = 1e-10;
  aopts.threads = 1;
  aopts.prep.enabled = state.range(0) != 0;
  analysis_engine engine(aopts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(bwr_dynamic()).failure_probability);
  }
  const analysis_result last = engine.run(bwr_dynamic());
  for (const auto& [name, value] : last.stats.metrics()) {
    state.counters[name] = value;
  }
}
BENCHMARK(bm_prep_engine_bwr)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void bm_prep_engine_industrial(benchmark::State& state) {
  // Same A/B on the (purely static) industrial PSA study, where the
  // rewrites and per-module generation pay off the most.
  static const sd_fault_tree tree = sd_fault_tree(industrial_static());
  analysis_options aopts;
  aopts.cutoff = 1e-15;
  aopts.threads = 1;
  aopts.prep.enabled = state.range(0) != 0;
  analysis_engine engine(aopts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(tree).failure_probability);
  }
  const analysis_result last = engine.run(tree);
  for (const auto& [name, value] : last.stats.metrics()) {
    state.counters[name] = value;
  }
}
BENCHMARK(bm_prep_engine_industrial)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// --- Packed-bitset cutset kernels ---------------------------------------
// The CI perf-smoke job runs exactly these via --benchmark_filter=bitset
// and archives the JSON as BENCH_bitset.json (no thresholds; trend data
// only). Arg(0) is the vector baseline, Arg(1) the packed kernel.

/// A redundant cutset family derived from the industrial model's real
/// minimal cutsets: the MCS list plus seeded pairwise unions (guaranteed
/// subsumed) plus duplicates — the shape minimize_cutsets() sees from raw
/// MOCUS output.
const std::vector<cutset>& redundant_industrial_family() {
  static const std::vector<cutset> family = [] {
    mocus_options opts;
    opts.cutoff = 1e-15;
    const std::vector<cutset> mcs = mocus(industrial_static(), opts).cutsets;
    rng random(0xb17);
    std::vector<cutset> out = mcs;
    for (std::size_t i = 0; i < 2 * mcs.size(); ++i) {
      const cutset& a = mcs[random.below(mcs.size())];
      const cutset& b = mcs[random.below(mcs.size())];
      cutset joined(a.size() + b.size());
      std::merge(a.begin(), a.end(), b.begin(), b.end(), joined.begin());
      joined.erase(std::unique(joined.begin(), joined.end()), joined.end());
      out.push_back(std::move(joined));
    }
    return out;
  }();
  return family;
}

void bm_bitset_minimize_industrial(benchmark::State& state) {
  const bool packed = state.range(0) != 0;
  const std::vector<cutset>& family = redundant_industrial_family();
  for (auto _ : state) {
    std::vector<cutset> copy = family;
    benchmark::DoNotOptimize(
        packed ? minimize_cutsets(std::move(copy)).size()
               : minimize_cutsets_reference(std::move(copy)).size());
  }
  state.counters["family"] = static_cast<double>(family.size());
  minimize_stats stats;
  state.counters["kept"] = static_cast<double>(
      minimize_cutsets(family, &stats).size());
  state.counters["mocus.subset_tests"] =
      static_cast<double>(stats.subset_tests);
  state.counters["bitset.words"] = static_cast<double>(stats.universe_words);
}
BENCHMARK(bm_bitset_minimize_industrial)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void bm_bitset_subset_kernel(benchmark::State& state) {
  // The raw subsumption primitive on all pairs of 256 random sorted sets
  // over a 512-bit universe: word-loop (a & ~b) == 0 vs std::includes.
  const bool packed = state.range(0) != 0;
  constexpr std::size_t universe = 512;
  constexpr std::size_t n = 256;
  rng random(0x5e7);
  std::vector<cutset> sets(n);
  std::vector<packed_bitset> bits(n, packed_bitset(universe));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = 2 + random.below(11);
    for (std::size_t j = 0; j < len; ++j) {
      sets[i].push_back(static_cast<node_index>(random.below(universe)));
    }
    std::sort(sets[i].begin(), sets[i].end());
    sets[i].erase(std::unique(sets[i].begin(), sets[i].end()), sets[i].end());
    for (node_index e : sets[i]) bits[i].set(e);
  }
  for (auto _ : state) {
    std::size_t subsets = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (packed) {
          subsets += bits[i].is_subset_of(bits[j]) ? 1 : 0;
        } else {
          subsets += std::includes(sets[j].begin(), sets[j].end(),
                                   sets[i].begin(), sets[i].end())
                         ? 1
                         : 0;
        }
      }
    }
    benchmark::DoNotOptimize(subsets);
  }
}
BENCHMARK(bm_bitset_subset_kernel)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void bm_bitset_ordering_bwr(benchmark::State& state) {
  // Variable-ordering A/B on the static BWR tree: compile + exact
  // probability per ordering (0 dfs, 1 natural, 2 weight, 3 sift).
  const auto ordering = static_cast<bdd_ordering>(state.range(0));
  for (auto _ : state) {
    const ft_bdd compiled(bwr_static(), fault_tree::npos, ordering);
    benchmark::DoNotOptimize(compiled.probability());
  }
  const ft_bdd last(bwr_static(), fault_tree::npos, ordering);
  state.counters["bdd.nodes"] = static_cast<double>(last.node_count());
  state.counters["bdd.sift_swaps"] = static_cast<double>(last.sift_swaps());
}
BENCHMARK(bm_bitset_ordering_bwr)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

// --- Observability overhead (DESIGN.md §11). The acceptance bar is <2%
// on instrumented pipelines with recording compiled in but disabled; the
// per-callsite benches below show the absolute cost a disabled span or
// counter adds, and the engine A/B pair shows it drowning in real work.

void bm_obs_span_disabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::span_scope span("bench.span", "bench");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(bm_obs_span_disabled);

void bm_obs_span_enabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::trace_recorder::instance().clear();
  std::size_t n = 0;
  for (auto _ : state) {
    {
      obs::span_scope span("bench.span", "bench");
      benchmark::DoNotOptimize(span.active());
    }
    // Bound recorder memory; the clear is amortised out of the hot loop.
    if (++n % 65536 == 0) obs::trace_recorder::instance().clear();
  }
  obs::set_enabled(false);
  obs::trace_recorder::instance().clear();
}
BENCHMARK(bm_obs_span_enabled);

void bm_obs_counter_add(benchmark::State& state) {
  static obs::counter& c =
      obs::metrics_registry::global().get_counter("bench.count");
  for (auto _ : state) {
    c.add(1);
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(bm_obs_counter_add);

void bm_engine_obs(benchmark::State& state) {
  const bool tracing = state.range(0) != 0;
  obs::set_enabled(tracing);
  analysis_options aopts;
  aopts.cutoff = 1e-10;
  aopts.threads = 1;
  analysis_engine engine(aopts);
  for (auto _ : state) {
    if (tracing) obs::trace_recorder::instance().clear();
    benchmark::DoNotOptimize(engine.run(bwr_dynamic()).failure_probability);
  }
  // Attach the canonical engine metrics to the row, so BENCH_*.json files
  // carry the same keys as a --metrics-json dump (DESIGN.md §11).
  const analysis_result last = engine.run(bwr_dynamic());
  for (const auto& [name, value] : last.stats.metrics()) {
    state.counters[name] = value;
  }
  obs::set_enabled(false);
  obs::trace_recorder::instance().clear();
}
BENCHMARK(bm_engine_obs)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void bm_generate_industrial(benchmark::State& state) {
  industrial_options opts;
  opts.num_frontline_systems = 12;
  opts.num_initiating_events = 8;
  opts.sequences_per_ie = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_industrial(opts).ft.size());
  }
}
BENCHMARK(bm_generate_industrial)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
