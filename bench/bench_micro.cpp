// E9: google-benchmark micro-kernels for the substrates the pipeline is
// built on: MOCUS vs BDD cutset generation, BDD exact probability,
// uniformised transient analysis, product-chain construction, and the
// per-cutset model build.

#include <benchmark/benchmark.h>

#include "bdd/ft_bdd.hpp"
#include "core/mcs_model.hpp"
#include "ctmc/transient.hpp"
#include "ctmc/triggered.hpp"
#include "gen/bwr.hpp"
#include "gen/industrial.hpp"
#include "mcs/mocus.hpp"
#include "product/product_ctmc.hpp"

namespace {

using namespace sdft;

const fault_tree& bwr_static() {
  static const fault_tree ft = make_bwr_model({}).structure();
  return ft;
}

const sd_fault_tree& bwr_dynamic() {
  static const sd_fault_tree tree = [] {
    bwr_options opts;
    opts.dynamic_events = true;
    opts.repair_rate = 0.01;
    return make_bwr_model(with_bwr_triggers(opts, bwr_num_triggers));
  }();
  return tree;
}

void bm_mocus_bwr(benchmark::State& state) {
  mocus_options opts;
  opts.cutoff = 1e-15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mocus(bwr_static(), opts).cutsets.size());
  }
}
BENCHMARK(bm_mocus_bwr)->Unit(benchmark::kMillisecond);

void bm_bdd_compile_bwr(benchmark::State& state) {
  for (auto _ : state) {
    const ft_bdd compiled(bwr_static());
    benchmark::DoNotOptimize(compiled.node_count());
  }
}
BENCHMARK(bm_bdd_compile_bwr)->Unit(benchmark::kMillisecond);

void bm_bdd_exact_probability(benchmark::State& state) {
  for (auto _ : state) {
    const ft_bdd compiled(bwr_static());
    benchmark::DoNotOptimize(compiled.probability());
  }
}
BENCHMARK(bm_bdd_exact_probability)->Unit(benchmark::kMillisecond);

void bm_bdd_cutsets_bwr(benchmark::State& state) {
  const ft_bdd compiled(bwr_static());
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.minimal_cutsets().size());
  }
}
BENCHMARK(bm_bdd_cutsets_bwr)->Unit(benchmark::kMillisecond);

void bm_transient_erlang(benchmark::State& state) {
  const int phases = static_cast<int>(state.range(0));
  const ctmc chain = make_erlang_active(phases, 1e-3, 1e-2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reach_failed_probability(chain, 24.0));
  }
}
BENCHMARK(bm_transient_erlang)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void bm_product_chain_mcs(benchmark::State& state) {
  // A representative dynamic cutset of the fully dynamic BWR model:
  // both RHR running-failures plus the triggered FEED&BLEED injection.
  const sd_fault_tree& tree = bwr_dynamic();
  const cutset c{tree.structure().find("IE_TRANSIENT"),
                 tree.structure().find("RHR_T1_FIO"),
                 tree.structure().find("RHR_T2_FIO"),
                 tree.structure().find("FB_FIO")};
  for (auto _ : state) {
    const mcs_model model = build_mcs_model(tree, c);
    benchmark::DoNotOptimize(
        build_product_ctmc(model.tree).num_states());
  }
}
BENCHMARK(bm_product_chain_mcs)->Unit(benchmark::kMicrosecond);

void bm_quantify_mcs(benchmark::State& state) {
  const sd_fault_tree& tree = bwr_dynamic();
  const cutset c{tree.structure().find("IE_TRANSIENT"),
                 tree.structure().find("RHR_T1_FIO"),
                 tree.structure().find("RHR_T2_FIO"),
                 tree.structure().find("FB_FIO")};
  const mcs_model model = build_mcs_model(tree, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantify_mcs_model(model, 24.0));
  }
}
BENCHMARK(bm_quantify_mcs)->Unit(benchmark::kMicrosecond);

void bm_generate_industrial(benchmark::State& state) {
  industrial_options opts;
  opts.num_frontline_systems = 12;
  opts.num_initiating_events = 8;
  opts.sequences_per_ie = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_industrial(opts).ft.size());
  }
}
BENCHMARK(bm_generate_industrial)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
