// E6: the paper's Figure 3 — time to analyse each per-cutset Markov model
// as a function of the number of dynamic basic events in the cutset and of
// the number of Erlang phases per event (log scale in the paper).
//
// Paper shape being reproduced: per-cutset time is exponential in the
// number of dynamic events (the product chain), with the number of phases
// driving the base of the exponent.
//
// Also sweeps stage 2 (MOCUS cutset generation) over thread counts to
// report the speedup of the work-stealing parallel driver, verifying on
// every run that the parallel cutset list is identical to the serial one.

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

void run_thread_sweep(const sdft::industrial_model& model) {
  using namespace sdft;
  std::printf("=== Stage 2 thread sweep: parallel MOCUS on model 1 ===\n\n");

  mocus_options mopts;
  mopts.cutoff = bench::paper_cutoff;
  const mocus_result serial = mocus(model.ft, mopts);

  text_table table({"threads", "time", "speedup", "tasks", "steals",
                    "occupancy", "identical"});
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    thread_pool pool(threads);
    mopts.pool = &pool;
    const pool_counters before = pool.counters();
    const mocus_result r = mocus(model.ft, mopts);
    const pool_counters after = pool.counters();

    char t[32], s[32], occ[32];
    std::snprintf(t, sizeof t, "%.3fs", r.seconds);
    std::snprintf(s, sizeof s, "%.2fx", serial.seconds / r.seconds);
    std::snprintf(occ, sizeof occ, "%.1f%%",
                  100.0 * after.occupancy_since(before));
    table.add_row({std::to_string(pool.size()), t, s,
                   std::to_string(after.submitted - before.submitted),
                   std::to_string(after.stolen - before.stolen), occ,
                   r.cutsets == serial.cutsets ? "yes" : "NO (BUG)"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "%zu minimal cutsets; every row must reproduce the serial list\n"
      "bit-identically (\"identical\" column).\n\n",
      serial.cutsets.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  const bench::prepared_model p =
      bench::prepare(bench::model1_options(full));

  run_thread_sweep(p.model);

  std::printf(
      "=== Figure 3: per-MCS analysis time vs #dyn events x phases ===\n\n");

  struct cell {
    double seconds = 0.0;
    double states = 0.0;
    std::size_t count = 0;
  };

  const int phase_counts[] = {1, 2, 3, 4};
  std::map<std::pair<int, std::size_t>, cell> grid;  // (phases, events)
  std::size_t max_events = 0;

  for (int phases : phase_counts) {
    annotation_options an;
    an.dynamic_fraction = 1.0;
    an.trigger_fraction = 0.1;
    an.repair_rate = 0.01;
    an.phases = phases;
    const sd_fault_tree tree = annotate_dynamic(p.model, p.ranked, an);

    analysis_options aopts;
    aopts.horizon = 24.0;
    aopts.cutoff = bench::paper_cutoff;
    aopts.reference_cutoff = true;  // paper uses the static cutoff (§VI)
    aopts.keep_cutset_details = true;  // need the per-cutset timings
    const analysis_result r = analyze(tree, aopts);

    for (const auto& q : r.cutsets) {
      if (!q.dynamic) continue;
      const std::size_t events = q.num_dynamic + q.num_added_dynamic;
      cell& c = grid[{phases, events}];
      c.seconds += q.seconds;
      c.states += static_cast<double>(q.chain_states);
      ++c.count;
      max_events = std::max(max_events, events);
    }
  }

  text_table table({"# dyn events", "phases", "mean time per MCS",
                    "mean chain states", "# MCS"});
  for (std::size_t events = 1; events <= max_events; ++events) {
    for (int phases : phase_counts) {
      auto it = grid.find({phases, events});
      if (it == grid.end()) continue;
      const cell& c = it->second;
      char t[32], s[32];
      std::snprintf(t, sizeof t, "%.3fms",
                    1e3 * c.seconds / static_cast<double>(c.count));
      std::snprintf(s, sizeof s, "%.1f",
                    c.states / static_cast<double>(c.count));
      table.add_row({std::to_string(events), std::to_string(phases), t, s,
                     std::to_string(c.count)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "chain size (and thus time) grows exponentially in #dyn events with\n"
      "the per-event state count (phases) as the base, as in the paper.\n");
  return 0;
}
