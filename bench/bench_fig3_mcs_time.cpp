// E6: the paper's Figure 3 — time to analyse each per-cutset Markov model
// as a function of the number of dynamic basic events in the cutset and of
// the number of Erlang phases per event (log scale in the paper).
//
// Paper shape being reproduced: per-cutset time is exponential in the
// number of dynamic events (the product chain), with the number of phases
// driving the base of the exponent.
//
// Also sweeps stage 2 (MOCUS cutset generation) over thread counts to
// report the speedup of the work-stealing parallel driver, verifying on
// every run that the parallel cutset list is identical to the serial one.

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "ctmc/triggered.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

/// Sorted copy of the per-cutset event lists — the stage-2 output a
/// stage-3 change must not perturb.
std::vector<sdft::cutset> cutset_lists(const sdft::analysis_result& r) {
  std::vector<sdft::cutset> lists;
  lists.reserve(r.cutsets.size());
  for (const auto& q : r.cutsets) lists.push_back(q.events);
  std::sort(lists.begin(), lists.end());
  return lists;
}

/// Shared-trigger standby groups: each group is one primary whose failure
/// switches on `trains` identical spare pumps; the group fails when the
/// primary and every spare are down. MCS shape: one cutset per group with
/// trains + 1 dynamic events — the worst case for stage 3 and the best
/// case for symmetry lumping.
sdft::sd_fault_tree make_sequential_trains_model(std::size_t groups,
                                                 std::size_t trains) {
  using namespace sdft;
  sd_fault_tree tree;
  std::vector<node_index> group_gates;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::string suffix = std::to_string(g);
    const node_index primary = tree.add_dynamic_event(
        "P" + suffix, make_repairable(0.01 + 0.001 * g, 0.05));
    const node_index gp =
        tree.add_gate("GP" + suffix, gate_type::or_gate, {primary});
    std::vector<node_index> inputs{gp};
    for (std::size_t i = 0; i < trains; ++i) {
      triggered_ctmc pump;
      pump.chain = ctmc(4);
      pump.chain.set_initial(0, 1.0);
      pump.chain.set_failed(3);
      pump.chain.add_rate(2, 3, 0.002 + 0.0001 * g);
      pump.chain.add_rate(3, 2, 0.05);
      pump.chain.add_rate(1, 0, 0.05);
      pump.on_state = {0, 0, 1, 1};
      pump.to_on = {2, 3, 0, 0};
      pump.to_off = {0, 0, 0, 1};
      const node_index train = tree.add_dynamic_event(
          "T" + suffix + "_" + std::to_string(i), pump);
      tree.set_trigger(gp, train);
      inputs.push_back(train);
    }
    group_gates.push_back(
        tree.add_gate("GROUP" + suffix, gate_type::and_gate, inputs));
  }
  tree.set_top(tree.add_gate("top", gate_type::or_gate, group_gates));
  tree.validate();
  return tree;
}

/// Runs the full pipeline with the stage-3 fast paths on and off and
/// reports the quantification-stage speedup. The cutset lists must be
/// bit-identical — stage 3 never feeds back into stage 2.
void run_stage3_ab(const sdft::sd_fault_tree& tree, const char* label,
                   double horizon, sdft::text_table& table) {
  using namespace sdft;
  analysis_options fast;
  fast.horizon = horizon;
  fast.cutoff = bench::paper_cutoff;
  fast.cache_quantifications = false;  // measure every solve
  analysis_options slow = fast;
  slow.lump_symmetry = false;
  slow.packed_state_keys = false;
  slow.transient_early_termination = false;

  const analysis_result before = analyze(tree, slow);
  const analysis_result after = analyze(tree, fast);
  const bool identical = cutset_lists(before) == cutset_lists(after);
  const double gap =
      std::abs(before.failure_probability - after.failure_probability) /
      std::max(before.failure_probability, 1e-300);

  char t_before[32], t_after[32], speedup[32], drift[32];
  std::snprintf(t_before, sizeof t_before, "%.3fs",
                before.stats.quantify_seconds);
  std::snprintf(t_after, sizeof t_after, "%.3fs",
                after.stats.quantify_seconds);
  std::snprintf(speedup, sizeof speedup, "%.2fx",
                before.stats.quantify_seconds /
                    std::max(after.stats.quantify_seconds, 1e-12));
  std::snprintf(drift, sizeof drift, "%.1e", gap);
  table.add_row({label, std::to_string(after.num_cutsets), t_before, t_after,
                 speedup,
                 std::to_string(after.stats.lumped_orbits) + " / " +
                     std::to_string(after.stats.uniformisation_steps_saved),
                 drift, identical ? "yes" : "NO (BUG)"});
}

void run_thread_sweep(const sdft::industrial_model& model) {
  using namespace sdft;
  std::printf("=== Stage 2 thread sweep: parallel MOCUS on model 1 ===\n\n");

  mocus_options mopts;
  mopts.cutoff = bench::paper_cutoff;
  const mocus_result serial = mocus(model.ft, mopts);

  text_table table({"threads", "time", "speedup", "tasks", "steals",
                    "occupancy", "identical"});
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    thread_pool pool(threads);
    mopts.pool = &pool;
    const pool_counters before = pool.counters();
    const mocus_result r = mocus(model.ft, mopts);
    const pool_counters after = pool.counters();

    char t[32], s[32], occ[32];
    std::snprintf(t, sizeof t, "%.3fs", r.seconds);
    std::snprintf(s, sizeof s, "%.2fx", serial.seconds / r.seconds);
    std::snprintf(occ, sizeof occ, "%.1f%%",
                  100.0 * after.occupancy_since(before));
    table.add_row({std::to_string(pool.size()), t, s,
                   std::to_string(after.submitted - before.submitted),
                   std::to_string(after.stolen - before.stolen), occ,
                   r.cutsets == serial.cutsets ? "yes" : "NO (BUG)"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "%zu minimal cutsets; every row must reproduce the serial list\n"
      "bit-identically (\"identical\" column).\n\n",
      serial.cutsets.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  const bench::prepared_model p =
      bench::prepare(bench::model1_options(full));

  run_thread_sweep(p.model);

  std::printf(
      "=== Stage-3 fast path: before/after breakdown ===\n\n");
  {
    text_table ab({"configuration", "cutsets", "quantify (before)",
                   "quantify (after)", "speedup", "orbits / steps saved",
                   "rel drift", "cutsets identical"});
    run_stage3_ab(make_sequential_trains_model(6, full ? 9 : 7),
                  "sequential trains (shared trigger)", 96.0, ab);
    {
      annotation_options an;
      an.dynamic_fraction = 1.0;
      an.trigger_fraction = 0.3;
      an.repair_rate = 0.01;
      an.phases = 6;  // deep per-event chains: stage 3 dominates
      const sd_fault_tree industrial =
          annotate_dynamic(p.model, p.ranked, an);
      run_stage3_ab(industrial, "industrial (model 1 annotation)", 96.0, ab);
    }
    std::printf("%s\n", ab.str().c_str());
    std::printf(
        "before = lumping/packing/early-termination off; after = defaults.\n"
        "Stage 2 must hand both runs bit-identical cutset lists.\n\n");
  }

  std::printf(
      "=== Figure 3: per-MCS analysis time vs #dyn events x phases ===\n\n");

  struct cell {
    double seconds = 0.0;
    double states = 0.0;
    std::size_t count = 0;
  };

  const int phase_counts[] = {1, 2, 3, 4};
  std::map<std::pair<int, std::size_t>, cell> grid;  // (phases, events)
  std::size_t max_events = 0;

  for (int phases : phase_counts) {
    annotation_options an;
    an.dynamic_fraction = 1.0;
    an.trigger_fraction = 0.1;
    an.repair_rate = 0.01;
    an.phases = phases;
    const sd_fault_tree tree = annotate_dynamic(p.model, p.ranked, an);

    analysis_options aopts;
    aopts.horizon = 24.0;
    aopts.cutoff = bench::paper_cutoff;
    aopts.reference_cutoff = true;  // paper uses the static cutoff (§VI)
    aopts.keep_cutset_details = true;  // need the per-cutset timings
    const analysis_result r = analyze(tree, aopts);

    for (const auto& q : r.cutsets) {
      if (!q.dynamic) continue;
      const std::size_t events = q.num_dynamic + q.num_added_dynamic;
      cell& c = grid[{phases, events}];
      c.seconds += q.seconds;
      c.states += static_cast<double>(q.chain_states);
      ++c.count;
      max_events = std::max(max_events, events);
    }
  }

  text_table table({"# dyn events", "phases", "mean time per MCS",
                    "mean chain states", "# MCS"});
  for (std::size_t events = 1; events <= max_events; ++events) {
    for (int phases : phase_counts) {
      auto it = grid.find({phases, events});
      if (it == grid.end()) continue;
      const cell& c = it->second;
      char t[32], s[32];
      std::snprintf(t, sizeof t, "%.3fms",
                    1e3 * c.seconds / static_cast<double>(c.count));
      std::snprintf(s, sizeof s, "%.1f",
                    c.states / static_cast<double>(c.count));
      table.add_row({std::to_string(events), std::to_string(phases), t, s,
                     std::to_string(c.count)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "chain size (and thus time) grows exponentially in #dyn events with\n"
      "the per-event state count (phases) as the base, as in the paper.\n");
  return 0;
}
