// E6: the paper's Figure 3 — time to analyse each per-cutset Markov model
// as a function of the number of dynamic basic events in the cutset and of
// the number of Erlang phases per event (log scale in the paper).
//
// Paper shape being reproduced: per-cutset time is exponential in the
// number of dynamic events (the product chain), with the number of phases
// driving the base of the exponent.

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  const bench::prepared_model p =
      bench::prepare(bench::model1_options(full));

  std::printf(
      "=== Figure 3: per-MCS analysis time vs #dyn events x phases ===\n\n");

  struct cell {
    double seconds = 0.0;
    double states = 0.0;
    std::size_t count = 0;
  };

  const int phase_counts[] = {1, 2, 3, 4};
  std::map<std::pair<int, std::size_t>, cell> grid;  // (phases, events)
  std::size_t max_events = 0;

  for (int phases : phase_counts) {
    annotation_options an;
    an.dynamic_fraction = 1.0;
    an.trigger_fraction = 0.1;
    an.repair_rate = 0.01;
    an.phases = phases;
    const sd_fault_tree tree = annotate_dynamic(p.model, p.ranked, an);

    analysis_options aopts;
    aopts.horizon = 24.0;
    aopts.cutoff = bench::paper_cutoff;
    aopts.reference_cutoff = true;  // paper uses the static cutoff (§VI)
    aopts.keep_cutset_details = true;  // need the per-cutset timings
    const analysis_result r = analyze(tree, aopts);

    for (const auto& q : r.cutsets) {
      if (!q.dynamic) continue;
      const std::size_t events = q.num_dynamic + q.num_added_dynamic;
      cell& c = grid[{phases, events}];
      c.seconds += q.seconds;
      c.states += static_cast<double>(q.chain_states);
      ++c.count;
      max_events = std::max(max_events, events);
    }
  }

  text_table table({"# dyn events", "phases", "mean time per MCS",
                    "mean chain states", "# MCS"});
  for (std::size_t events = 1; events <= max_events; ++events) {
    for (int phases : phase_counts) {
      auto it = grid.find({phases, events});
      if (it == grid.end()) continue;
      const cell& c = it->second;
      char t[32], s[32];
      std::snprintf(t, sizeof t, "%.3fms",
                    1e3 * c.seconds / static_cast<double>(c.count));
      std::snprintf(s, sizeof s, "%.1f",
                    c.states / static_cast<double>(c.count));
      table.add_row({std::to_string(events), std::to_string(phases), t, s,
                     std::to_string(c.count)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "chain size (and thus time) grows exponentially in #dyn events with\n"
      "the per-event state count (phases) as the base, as in the paper.\n");
  return 0;
}
