// E10 (ablation, ours): the cost and accuracy of the three trigger-gate
// classes of paper §V-A on the same cutset, plus the §VIII approximation
// modes.
//
// Shape: static branching models the fewest events (cheapest chains),
// static joins add the interfering dynamic events, the general case also
// adds static guards; the under-approximation bounds from below, the
// over-approximation from above, with the exact value in between.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/mcs_model.hpp"
#include "ctmc/transient.hpp"
#include "ctmc/triggered.hpp"
#include "product/product_ctmc.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// e, f1..fN dynamic under the triggering OR; g triggered; top = AND(e, g).
/// Growing N shows the cost of static joins (all of Dyn is added).
sdft::sd_fault_tree joins_chain(int interferers) {
  using namespace sdft;
  sd_fault_tree tree;
  const node_index e =
      tree.add_dynamic_event("e", make_erlang_active(1, 0.05, 0.2));
  std::vector<node_index> inputs{e};
  for (int i = 0; i < interferers; ++i) {
    inputs.push_back(tree.add_dynamic_event(
        "f" + std::to_string(i), make_erlang_active(1, 0.08, 0.2)));
  }
  const node_index trig_gate =
      tree.add_gate("G", gate_type::or_gate, inputs);
  const node_index g = tree.add_dynamic_event(
      "g", make_erlang_triggered(1, 0.1, 0.2, 100.0));
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {e, g}));
  tree.set_trigger(trig_gate, g);
  tree.validate();
  return tree;
}

}  // namespace

int main() {
  using namespace sdft;

  const double t = 24.0;
  std::printf("=== trigger-class ablation: cutset {e, g} ===\n\n");

  text_table table({"interferers", "mode", "p-tilde", "chain states",
                    "added dyn", "added static", "time"});
  for (int n : {1, 2, 4, 6}) {
    const sd_fault_tree tree = joins_chain(n);
    const cutset c{tree.structure().find("e"), tree.structure().find("g")};
    struct row {
      const char* label;
      approx_mode mode;
    };
    for (const row& r : {row{"exact (static joins)",
                             approx_mode::as_classified},
                         row{"under (branching)",
                             approx_mode::under_approximate},
                         row{"over", approx_mode::over_approximate}}) {
      stopwatch timer;
      const mcs_model model = build_mcs_model(tree, c, r.mode);
      std::size_t states = 0;
      const double p = quantify_mcs_model(model, t, 1e-10, 2'000'000,
                                          &states);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3fms", timer.millis());
      table.add_row({std::to_string(n), r.label, sci(p, 4),
                     std::to_string(states),
                     std::to_string(model.added_dynamic.size()),
                     std::to_string(model.added_static.size()), buf});
    }
    // Reference: the exact product semantics of the whole (small) tree.
    stopwatch timer;
    const double exact = exact_failure_probability(tree, t);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3fms", timer.millis());
    table.add_row({std::to_string(n), "full product (reference)",
                   sci(exact, 4), "-", "-", "-", buf});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "under <= exact <= over; the under-approximation's chain excludes\n"
      "all interferers, the exact static-joins chain grows with them.\n\n");

  // Stage-3 breakdown on the same models: the N identical interferers
  // under the triggering OR form one orbit, so lumping collapses the
  // exact chain; early termination trims the uniformisation on top.
  std::printf("=== stage-3 fast path on the static-joins chain ===\n\n");
  text_table stage3({"interferers", "states before", "states after",
                     "time before", "time after", "speedup", "rel drift"});
  for (int n : {2, 4, 6, 8}) {
    const sd_fault_tree tree = joins_chain(n);
    const cutset c{tree.structure().find("e"), tree.structure().find("g")};
    const mcs_model model = build_mcs_model(tree, c);

    product_options slow_opts;
    slow_opts.lump_symmetry = false;
    slow_opts.packed_state_keys = false;
    transient_controls slow_ctrl;
    slow_ctrl.early_termination = false;
    slow_ctrl.steady_state_detection = false;
    stopwatch slow_timer;
    const product_ctmc slow_product =
        build_product_ctmc(model.tree, slow_opts);
    const double slow_p =
        reach_failed_probability(slow_product.chain, t, 1e-10, slow_ctrl) *
        model.static_factor;
    const double slow_ms = slow_timer.millis();

    stopwatch fast_timer;
    const product_ctmc fast_product = build_product_ctmc(model.tree);
    const double fast_p =
        reach_failed_probability(fast_product.chain, t, 1e-10) *
        model.static_factor;
    const double fast_ms = fast_timer.millis();

    char tb[32], ta[32], sp[32], drift[32];
    std::snprintf(tb, sizeof tb, "%.3fms", slow_ms);
    std::snprintf(ta, sizeof ta, "%.3fms", fast_ms);
    std::snprintf(sp, sizeof sp, "%.2fx", slow_ms / std::max(fast_ms, 1e-9));
    std::snprintf(drift, sizeof drift, "%.1e",
                  std::abs(slow_p - fast_p) / std::max(slow_p, 1e-300));
    stage3.add_row({std::to_string(n),
                    std::to_string(slow_product.num_states()),
                    std::to_string(fast_product.num_states()), tb, ta, sp,
                    drift});
  }
  std::printf("%s\n", stage3.str().c_str());
  return 0;
}
