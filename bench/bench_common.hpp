#pragma once

// Shared setup for the benchmark harness: the two synthetic stand-ins for
// the paper's proprietary §VI-B plant studies, plus a --full switch that
// scales them towards paper-order sizes (thousands of basic events). The
// default sizes keep every bench binary within a couple of minutes.

#include <cstring>
#include <string>

#include "gen/industrial.hpp"
#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"

namespace sdft::bench {

/// The cutoff constant used throughout the paper's experiments.
inline constexpr double paper_cutoff = 1e-15;

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Model 1 (paper: 2,995 BE / 52,213 gates / 74,130 MCS).
inline industrial_options model1_options(bool full) {
  industrial_options o;
  o.seed = 1;
  if (full) {
    o.num_frontline_systems = 60;
    o.num_support_systems = 12;
    o.num_initiating_events = 30;
    o.sequences_per_ie = 10;
    o.components_per_train = 8;
    o.transfer_depth = 6;
    // Wider, lower probability ranges: with paper-size cross products the
    // 1e-15 cutoff has to kill the bulk of the combinations, exactly as in
    // real PSA studies.
    o.fts_min = 3e-7;
    o.fts_max = 1e-3;
    o.fio_rate_min = 1.25e-8;
    o.fio_rate_max = 4e-5;
  } else {
    o.num_frontline_systems = 18;
    o.num_support_systems = 5;
    o.num_initiating_events = 10;
    o.sequences_per_ie = 6;
    o.components_per_train = 5;
  }
  return o;
}

/// Model 2 (paper: 2,040 BE / 56,863 gates / 76,921 MCS) — fewer events,
/// more gate structure, heavier MCS generation.
inline industrial_options model2_options(bool full) {
  industrial_options o;
  o.seed = 2;
  if (full) {
    o.num_frontline_systems = 40;
    o.num_support_systems = 10;
    o.num_initiating_events = 40;
    o.sequences_per_ie = 12;
    o.components_per_train = 7;
    o.transfer_depth = 8;
    o.fts_min = 3e-7;
    o.fts_max = 1e-3;
    o.fio_rate_min = 1.25e-8;
    o.fio_rate_max = 4e-5;
  } else {
    o.num_frontline_systems = 12;
    o.num_support_systems = 4;
    o.num_initiating_events = 14;
    o.sequences_per_ie = 8;
    o.components_per_train = 5;
    o.transfer_depth = 5;
  }
  return o;
}

/// A generated model together with its static MCS list and FV ranking —
/// the inputs every dynamic-annotation experiment starts from.
struct prepared_model {
  industrial_model model;
  mocus_result mcs;
  std::vector<node_index> ranked;
};

inline prepared_model prepare(const industrial_options& options) {
  prepared_model p;
  p.model = generate_industrial(options);
  mocus_options mopts;
  mopts.cutoff = paper_cutoff;
  p.mcs = mocus(p.model.ft, mopts);
  p.ranked = rank_by_fussell_vesely(p.model.ft, p.mcs.cutsets);
  return p;
}

}  // namespace sdft::bench
