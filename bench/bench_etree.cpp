// bench_etree — A/B benchmark of the one-pass event-tree scenario engine
// against per-sequence one-shot compilations.
//
//   bench_etree [--full] [--threads N] [--systems K] [--out FILE]
//
// Builds an industrial-family static study (gen/industrial), raises an
// event tree over K front-line system gates (full binary expansion: 2^K
// sequences, every functional event demanded in every sequence), then
// measures:
//
//   A  one pass: scenario_engine compiles every gate once into one shared
//      multi-root BDD and batch-quantifies all sequences and end states
//      (construction + run(), cutset column off — both sides BDD-exact).
//   B  one-shot: sequence_probability_exact per sequence, each call
//      compiling its own event_tree_bdd from scratch — the workload a
//      per-sequence analysis loop pays today.
//
// Asserts per-sequence bit-identity A == B (BDD operations are canonical,
// so sharing the compilation must not move a single bit) and
// A(threads=1) == A(threads=N) (index-ordered reduction). Writes the
// measurements as JSON (default BENCH_etree.json) for CI archival;
// `obs_check bench-etree` asserts the >= 3x acceptance threshold on it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "engine/scenario.hpp"
#include "etree/event_tree.hpp"
#include "etree/scenario.hpp"
#include "gen/industrial.hpp"
#include "util/error.hpp"
#include "util/json_writer.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace sdft;

const char* arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// The scenario over the generated study: IE0 initiates, the first K
/// front-line system gates are the functional events, and every F/S
/// combination is a sequence (end state CD when two or more systems
/// fail, OK otherwise — the usual "redundant mitigation" reading).
scenario_description make_scenario(const fault_tree& ft, int systems) {
  scenario_description sc;
  sc.name = "BENCH";
  sc.initiating_event = "IE0";
  require_model(ft.find("IE0") != fault_tree::npos,
                "bench_etree: generated model has no IE0");
  for (int k = 0; k < systems; ++k) {
    const std::string gate = "SYS" + std::to_string(k) + "_F";
    require_model(ft.find(gate) != fault_tree::npos,
                  "bench_etree: generated model has no " + gate);
    sc.functional.push_back({"F" + std::to_string(k), gate});
  }
  const std::size_t num_seq = std::size_t{1} << systems;
  for (std::size_t mask = 0; mask < num_seq; ++mask) {
    scenario_description::sequence s;
    int failures = 0;
    for (int k = 0; k < systems; ++k) {
      const bool failed = (mask >> k) & 1u;
      failures += failed ? 1 : 0;
      s.outcomes.push_back(failed ? branch_outcome::failure
                                  : branch_outcome::success);
    }
    s.end_state = failures >= 2 ? "CD" : "OK";
    sc.sequences.push_back(std::move(s));
  }
  return sc;
}

std::vector<double> sequence_probabilities(const scenario_result& r) {
  std::vector<double> p;
  p.reserve(r.sequences.size());
  for (const auto& s : r.sequences) p.push_back(s.probability);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const char* threads_arg = arg_value(argc, argv, "--threads");
  const char* systems_arg = arg_value(argc, argv, "--systems");
  const char* out_arg = arg_value(argc, argv, "--out");
  const int threads = threads_arg != nullptr ? std::atoi(threads_arg) : 8;
  // 9 systems / 512 sequences: enough prefix reuse for the speedup to
  // dominate the fixed costs, while the bench stays CI-sized (seconds).
  const int systems = systems_arg != nullptr ? std::atoi(systems_arg) : 9;
  const std::string out_path =
      out_arg != nullptr ? out_arg : "BENCH_etree.json";

  try {
    const industrial_model study =
        generate_industrial(bench::model1_options(full));
    const fault_tree& ft = study.ft;
    const scenario_description sc = make_scenario(ft, systems);
    const std::size_t num_seq = sc.sequences.size();
    std::printf("model: %zu basic events, %zu gates; etree: %d functional "
                "events, %zu sequences\n",
                ft.num_basic_events(), ft.num_gates(), systems, num_seq);

    // A: the one-pass engine (compile counted — that IS the shared cost).
    scenario_options a_opts;
    a_opts.analysis.threads = threads;
    a_opts.analysis.publish_metrics = false;
    a_opts.quantify_cutsets = false;
    stopwatch a_timer;
    scenario_engine engine({sd_fault_tree(ft), sc}, a_opts);
    const scenario_result a = engine.run();
    const double one_pass_seconds = a_timer.seconds();
    const std::vector<double> a_probs = sequence_probabilities(a);

    // Thread-identity: the same pass serialized must not move a bit.
    scenario_options serial_opts = a_opts;
    serial_opts.analysis.threads = 1;
    serial_opts.analysis.inline_execution = true;
    const scenario_result a1 =
        run_scenario({sd_fault_tree(ft), sc}, serial_opts);
    const bool thread_identical = a_probs == sequence_probabilities(a1);

    // B: per-sequence one-shots, each compiling its own BDD.
    event_tree et(ft, ft.find("IE0"), sc.name);
    for (const auto& f : sc.functional) {
      et.add_functional_event(f.name, ft.find(f.gate));
    }
    for (const auto& s : sc.sequences) et.add_sequence(s.outcomes, s.end_state);
    stopwatch b_timer;
    std::vector<double> b_probs(num_seq, 0.0);
    for (std::size_t s = 0; s < num_seq; ++s) {
      b_probs[s] = sequence_probability_exact(et, s);
    }
    const double one_shot_seconds = b_timer.seconds();

    const bool bit_identical = a_probs == b_probs;
    const double speedup =
        one_pass_seconds > 0.0 ? one_shot_seconds / one_pass_seconds : 0.0;
    std::printf("one pass %.4fs (%zu gates compiled, %zu prefix hits, %zu "
                "BDD nodes), one-shots %.4fs, speedup %.1fx, %s, %s\n",
                one_pass_seconds, a.stats.scenario_gates_compiled,
                a.stats.scenario_prefix_hits, a.stats.scenario_bdd_nodes,
                one_shot_seconds, speedup,
                bit_identical ? "bit-identical" : "MISMATCH",
                thread_identical ? "thread-identical" : "THREAD MISMATCH");

    json::writer w;
    w.begin_object();
    w.key("model").begin_object();
    w.key("basic_events").integer(ft.num_basic_events());
    w.key("gates").integer(ft.num_gates());
    w.key("full").boolean(full);
    w.end_object();
    w.key("etree").begin_object();
    w.key("functional_events").integer(systems);
    w.key("sequences").integer(num_seq);
    w.key("end_states").integer(a.end_states.size());
    w.key("gates_compiled").integer(a.stats.scenario_gates_compiled);
    w.key("prefix_hits").integer(a.stats.scenario_prefix_hits);
    w.key("bdd_nodes").integer(a.stats.scenario_bdd_nodes);
    w.end_object();
    w.key("one_pass_seconds").number(one_pass_seconds);
    w.key("one_shot_seconds").number(one_shot_seconds);
    w.key("speedup").number(speedup);
    w.key("bit_identical").boolean(bit_identical);
    w.key("thread_identical").boolean(thread_identical);
    w.key("threads").integer(threads);
    w.end_object();
    std::ofstream out(out_path);
    out << w.str() << "\n";
    std::printf("wrote %s\n", out_path.c_str());
    return bit_identical && thread_identical ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_etree: %s\n", e.what());
    return 1;
  }
}
