// E4: the paper's §VI-B dynamic-fraction sweep on Model 1.
//
// Paper shape being reproduced: as the percentage of dynamic basic events
// grows (chosen by Fussell-Vesely importance, 1 triggered per 10 dynamic),
// the failure frequency drops, with the first ~30-40% responsible for most
// of the drop; the analysis time stops growing once the distribution of
// per-cutset Markov-model sizes stabilises.

#include <cstdio>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "mcs/cutset.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  const bench::prepared_model p =
      bench::prepare(bench::model1_options(full));
  const double static_freq =
      rare_event_probability(p.model.ft, p.mcs.cutsets);

  std::printf("=== §VI-B: dynamic fraction sweep, model 1 (t = 24h) ===\n\n");
  text_table table({"% dyn. BE", "% trigg. BE", "failure freq.",
                    "dyn. MCS", "analysis time"});
  table.add_row({"0", "0", sci(static_freq), "0", "-"});

  analysis_options aopts;
  aopts.horizon = 24.0;
  aopts.cutoff = bench::paper_cutoff;
  aopts.reference_cutoff = true;  // the paper uses the static cutoff (§VI)
  aopts.keep_cutset_details = false;

  for (double fraction : {0.1, 0.2, 0.3, 0.4, 0.5, 1.0}) {
    annotation_options an;
    an.dynamic_fraction = fraction;
    an.trigger_fraction = 0.1;
    an.repair_rate = 0.01;
    const sd_fault_tree tree = annotate_dynamic(p.model, p.ranked, an);
    const analysis_result r = analyze(tree, aopts);
    table.add_row({std::to_string(static_cast<int>(fraction * 100)),
                   std::to_string(static_cast<int>(fraction * 10)),
                   sci(r.failure_probability),
                   std::to_string(r.num_dynamic_cutsets),
                   duration_str(r.total_seconds)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "paper: 1.50e-9 static dropping to 5.71e-9-range by 100%% dynamic,\n"
      "with most of the drop and the time plateau before ~40%%.\n");
  return 0;
}
