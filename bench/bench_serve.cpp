// bench_serve — load benchmark for the structure-keyed reuse path and the
// resident service.
//
//   bench_serve [--full] [--points N] [--out FILE]
//     A/B: an N-point batched sweep over the synthetic industrial model vs
//     N independent one-shot analyses (bit-identity checked per point),
//     plus cold-vs-warm analyze latency through analysis_service. Writes
//     the measurements as JSON (default BENCH_serve.json) for CI archival;
//     `obs_check bench-serve` asserts the acceptance thresholds on it.
//
//   bench_serve --connect PORT [--model NAME] [--event NAME]
//     Script client for a running `sdft serve --port PORT`: health, list,
//     one cold and several warm analyze requests (latencies printed), an
//     optional sweep when --event names a static basic event, shutdown is
//     left to the caller. Exits non-zero on any "ok":false response.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "engine/sweep.hpp"
#include "gen/industrial.hpp"
#include "sdft/parser.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/json_writer.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace sdft;

const char* arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// The annotated industrial study: static PSA model plus dynamic events on
/// the FV-ranked components, the workload the service is built for.
sd_fault_tree make_study(bool full) {
  const bench::prepared_model prepared =
      bench::prepare(bench::model1_options(full));
  annotation_options an;
  an.dynamic_fraction = 0.3;
  an.trigger_fraction = 0.1;
  an.repair_rate = 0.01;
  return annotate_dynamic(prepared.model, prepared.ranked, an);
}

std::string first_static_event(const sd_fault_tree& tree) {
  const fault_tree& ft = tree.structure();
  for (node_index n = 0; n < ft.size(); ++n) {
    if (ft.is_basic(n) && tree.is_static(n)) return ft.node(n).name;
  }
  throw error("bench_serve: model has no static basic event");
}

bool same_cutsets(const analysis_result& a, const analysis_result& b) {
  if (a.cutsets.size() != b.cutsets.size()) return false;
  for (std::size_t i = 0; i < a.cutsets.size(); ++i) {
    if (a.cutsets[i].events != b.cutsets[i].events) return false;
    if (a.cutsets[i].probability != b.cutsets[i].probability) return false;
  }
  return true;
}

// ---------------------------------------------------------------- in-process

int run_inprocess(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const char* points_arg = arg_value(argc, argv, "--points");
  const std::size_t num_points =
      points_arg != nullptr ? std::strtoul(points_arg, nullptr, 10) : 32;
  const char* out_arg = arg_value(argc, argv, "--out");
  const std::string out_path =
      out_arg != nullptr ? out_arg : "BENCH_serve.json";

  std::printf("=== bench_serve: structure reuse vs one-shot analyses ===\n\n");
  const sd_fault_tree tree = make_study(full);
  const fault_tree& ft = tree.structure();
  std::printf("model: %zu basic events, %zu gates, %zu dynamic\n",
              ft.num_basic_events(), ft.num_gates(),
              tree.dynamic_events().size());

  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-12;

  const std::string axis = first_static_event(tree);
  const sweep_spec spec = resolve_sweep(
      parse_sweep_ranges({axis + "=1e-4:1e-2:" + std::to_string(num_points) +
                          ":log"}),
      tree);

  // A: the batched sweep — one envelope prime, every point replayed from
  // the shared structure cache.
  analysis_engine engine(opts);
  stopwatch sweep_timer;
  const sweep_result swept = run_sweep(engine, tree, spec);
  const double sweep_seconds = sweep_timer.seconds();

  // B: the same points as independent one-shot analyses, each paying
  // stages 1–2 from scratch — what a script without the service would do.
  stopwatch oneshot_timer;
  std::vector<analysis_result> oneshots;
  oneshots.reserve(spec.points.size());
  for (const sweep_point& point : spec.points) {
    sd_fault_tree perturbed = tree;
    for (const auto& [e, p] : point.overrides) {
      perturbed.structure().set_probability(e, p);
    }
    oneshots.push_back(analyze(perturbed, opts));
  }
  const double oneshot_seconds = oneshot_timer.seconds();

  bool bit_identical = true;
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    if (swept.points[i].failure_probability !=
            oneshots[i].failure_probability ||
        !same_cutsets(swept.points[i], oneshots[i])) {
      bit_identical = false;
      std::printf("MISMATCH at point %zu (%s)\n", i, spec.points[i].label.c_str());
    }
  }
  const double speedup =
      sweep_seconds > 0.0 ? oneshot_seconds / sweep_seconds : 0.0;
  std::printf(
      "\nsweep: %zu points in %.3fs (prime %.3fs, %zu cache hits)\n"
      "one-shots: %.3fs   speedup: %.2fx   bit-identical: %s\n",
      spec.points.size(), sweep_seconds, swept.prime_seconds,
      swept.struct_cache_hits, oneshot_seconds, speedup,
      bit_identical ? "yes" : "NO");

  // C: service latency — cold first request (pays stages 1–2), then warm
  // requests riding the resident caches.
  serve::analysis_service service(opts);
  service.load_text("study", write_sd_fault_tree(tree));
  const std::string request_prefix =
      R"({"op":"analyze","model":"study","overrides":{")" + axis + R"(":)";
  stopwatch cold_timer;
  const std::string cold = service.handle(request_prefix + "0.003}}");
  const double cold_seconds = cold_timer.seconds();
  if (json::parse(cold).at("ok").as_bool() != true) {
    std::fprintf(stderr, "bench_serve: cold request failed: %s\n",
                 cold.c_str());
    return 1;
  }
  const std::size_t warm_requests = 10;
  double warm_total = 0.0;
  double warm_min = 0.0;
  for (std::size_t i = 0; i < warm_requests; ++i) {
    const double p = 1e-3 + static_cast<double>(i) * 1e-4;
    stopwatch warm_timer;
    const std::string warm =
        service.handle(request_prefix + json::number(p) + "}}");
    const double s = warm_timer.seconds();
    if (json::parse(warm).at("ok").as_bool() != true) {
      std::fprintf(stderr, "bench_serve: warm request failed: %s\n",
                   warm.c_str());
      return 1;
    }
    warm_total += s;
    warm_min = i == 0 ? s : std::min(warm_min, s);
  }
  const double warm_mean = warm_total / static_cast<double>(warm_requests);
  std::printf(
      "serve: cold %.3fs, warm mean %.4fs (min %.4fs over %zu requests), "
      "cold/warm %.1fx\n",
      cold_seconds, warm_mean, warm_min, warm_requests,
      warm_mean > 0.0 ? cold_seconds / warm_mean : 0.0);

  json::writer w;
  w.begin_object();
  w.key("model").begin_object();
  w.key("basic_events").integer(ft.num_basic_events());
  w.key("gates").integer(ft.num_gates());
  w.key("dynamic_events").integer(tree.dynamic_events().size());
  w.key("full").boolean(full);
  w.end_object();
  w.key("sweep").begin_object();
  w.key("points").integer(spec.points.size());
  w.key("sweep_seconds").number(sweep_seconds);
  w.key("prime_seconds").number(swept.prime_seconds);
  w.key("oneshot_seconds").number(oneshot_seconds);
  w.key("speedup").number(speedup);
  w.key("bit_identical").boolean(bit_identical);
  w.key("struct_cache_hits").integer(swept.struct_cache_hits);
  w.end_object();
  w.key("serve").begin_object();
  w.key("cold_seconds").number(cold_seconds);
  w.key("warm_mean_seconds").number(warm_mean);
  w.key("warm_min_seconds").number(warm_min);
  w.key("warm_requests").integer(warm_requests);
  w.key("cold_over_warm")
      .number(warm_mean > 0.0 ? cold_seconds / warm_mean : 0.0);
  w.end_object();
  w.end_object();
  std::ofstream out(out_path);
  out << w.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return bit_identical ? 0 : 1;
}

// -------------------------------------------------------------- TCP client

class client {
 public:
  explicit client(unsigned short port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw error("bench_serve: socket failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw error("bench_serve: cannot connect to 127.0.0.1:" +
                  std::to_string(port));
    }
  }
  ~client() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request line, returns the parsed response; throws on a
  /// transport error or an "ok":false response.
  json::value request(const std::string& line, double* seconds = nullptr) {
    stopwatch timer;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
      if (n <= 0) throw error("bench_serve: send failed");
      sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char c = 0;
    while (true) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n <= 0) throw error("bench_serve: connection closed mid-response");
      if (c == '\n') break;
      response.push_back(c);
    }
    if (seconds != nullptr) *seconds = timer.seconds();
    json::value parsed = json::parse(response);
    if (parsed.at("ok").as_bool() != true) {
      throw error("bench_serve: request failed: " + response);
    }
    return parsed;
  }

 private:
  int fd_ = -1;
};

int run_client(int argc, char** argv) {
  const char* port_arg = arg_value(argc, argv, "--connect");
  const char* model_arg = arg_value(argc, argv, "--model");
  const char* event_arg = arg_value(argc, argv, "--event");
  const std::string model = model_arg != nullptr ? model_arg : "default";
  const unsigned short port =
      static_cast<unsigned short>(std::strtoul(port_arg, nullptr, 10));

  client c(port);
  c.request(R"({"op":"health","id":"bench"})");
  c.request(R"({"op":"list"})");

  const std::string analyze =
      R"({"op":"analyze","model":")" + model + R"(","horizon":24})";
  double cold = 0.0;
  c.request(analyze, &cold);
  double warm_total = 0.0;
  const std::size_t warm_requests = 5;
  for (std::size_t i = 0; i < warm_requests; ++i) {
    double s = 0.0;
    c.request(analyze, &s);
    warm_total += s;
  }
  std::printf("client: cold %.4fs, warm mean %.4fs over %zu requests\n",
              cold, warm_total / static_cast<double>(warm_requests),
              warm_requests);

  if (event_arg != nullptr) {
    double s = 0.0;
    const json::value swept = c.request(
        R"({"op":"sweep","model":")" + model + R"(","params":[{"name":")" +
            event_arg + R"(","lo":1e-4,"hi":1e-2,"n":8,"scale":"log"}]})",
        &s);
    std::printf("client: 8-point sweep on %s in %.4fs (%zu points)\n",
                event_arg, s, swept.at("points").as_array().size());
  }

  const json::value stats = c.request(R"({"op":"stats"})");
  std::printf("client: server held %.0f model(s), all requests ok\n",
              stats.at("models").as_number());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (arg_value(argc, argv, "--connect") != nullptr) {
      return run_client(argc, argv);
    }
    return run_inprocess(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
}
