// E8: the paper's §VI-B horizon sweep on Model 2.
//
//   | horizon | failure frequency | analysis time |
//   |   24h   | 1.86e-6           | 9m 31s        |
//   |   48h   | 4.67e-6           | 12m 47s       |
//   |   72h   | 7.56e-6           | 16m 59s       |
//   |   96h   | 1.05e-5           | 19m 14s       |
//
// Paper shape being reproduced: the frequency grows with the horizon
// (roughly linearly in this regime) while the analysis time grows only
// mildly (uniformisation cost is ~linear in q*t), so post-Fukushima
// multi-day horizons stay tractable.

#include <cstdio>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sdft;
  const bool full = bench::has_flag(argc, argv, "--full");

  const bench::prepared_model p =
      bench::prepare(bench::model2_options(full));

  std::printf("=== §VI-B: horizon sweep, model 2 ===\n\n");
  text_table table({"horizon", "failure frequency", "analysis time"});

  annotation_options an;
  an.dynamic_fraction = 1.0;
  an.trigger_fraction = 0.1;
  an.repair_rate = 0.01;
  const sd_fault_tree tree = annotate_dynamic(p.model, p.ranked, an);

  for (double horizon : {24.0, 48.0, 72.0, 96.0}) {
    analysis_options aopts;
    aopts.horizon = horizon;
    aopts.cutoff = bench::paper_cutoff;
    aopts.reference_cutoff = true;  // paper uses the static cutoff (§VI)
    aopts.keep_cutset_details = false;
    const analysis_result r = analyze(tree, aopts);
    table.add_row({std::to_string(static_cast<int>(horizon)) + "h",
                   sci(r.failure_probability),
                   duration_str(r.total_seconds)});
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
