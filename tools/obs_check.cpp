// obs_check — validates the observability artifacts of an `sdft analyze`
// run. Used by the CI smoke job (and handy interactively) to catch schema
// drift before a trace stops loading in Chrome/Perfetto or a bench loses a
// metric key.
//
//   obs_check trace <trace.json>          validate a --trace-json file
//   obs_check metrics <metrics.json>      validate a --metrics-json file
//   obs_check bench-serve <BENCH.json>    validate a bench_serve artifact
//   obs_check bench-etree <BENCH.json>    validate a bench_etree artifact
//   obs_check bench-mc <BENCH_mc.json>    validate a bench_mc artifact
//
// Trace checks: well-formed JSON, a traceEvents array whose "X" events have
// non-negative ts/dur, unique span ids, parent ids that resolve (or 0), and
// one span for each of the five engine stages parented to engine.run.
// Metrics checks: a flat JSON object carrying every canonical engine_stats
// key (DESIGN.md §11) with numeric values.
// Bench-serve checks: the ISSUE acceptance thresholds — the batched sweep
// bit-identical to its one-shots and at least 5x faster, with every point a
// structure-cache hit.
// Bench-etree checks: the one-pass scenario engine bit-identical to
// per-sequence one-shots and across thread counts, >= 3x faster, with the
// shared compilation covering every functional-event gate.
// Bench-mc checks: crude MC empty at the shared budget while forcing and
// splitting both bracket the exact-static answer with a >= 10x relative
// error improvement over crude.
//
// Exit code 0 when valid; 1 with a message on stderr otherwise.

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using sdft::json::value;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw sdft::error("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void check(bool cond, const std::string& what) {
  if (!cond) throw sdft::error(what);
}

int check_trace(const std::string& path) {
  const value doc = sdft::json::parse(slurp(path));
  const value& events = doc.at("traceEvents");
  check(events.is_array(), "traceEvents is not an array");

  std::set<double> ids;
  std::size_t complete = 0;
  for (const value& e : events.as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph != "X") continue;  // metadata events etc.
    ++complete;
    check(e.at("ts").as_number() >= 0.0, "negative ts");
    check(e.at("dur").as_number() >= 0.0, "negative dur");
    check(e.at("pid").as_number() == 1.0, "unexpected pid");
    e.at("tid").as_number();
    const double id = e.at("args").at("span_id").as_number();
    check(ids.insert(id).second, "duplicate span id");
  }
  // Parents must either be a recorded span or 0 (no parent).
  std::set<std::string> stages;
  double run_id = 0.0;
  for (const value& e : events.as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    const double parent = e.at("args").at("parent_id").as_number();
    check(parent == 0.0 || ids.count(parent) > 0,
          "parent id does not resolve: " + e.at("name").as_string());
    if (e.at("name").as_string() == "engine.run") {
      run_id = e.at("args").at("span_id").as_number();
    }
  }
  for (const value& e : events.as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    const std::string& name = e.at("name").as_string();
    if (name == "engine.translate" || name == "engine.prep" ||
        name == "engine.generate" || name == "engine.quantify" ||
        name == "engine.sum") {
      check(e.at("args").at("parent_id").as_number() == run_id,
            "stage span '" + name + "' not parented to engine.run");
      stages.insert(name);
    }
  }
  check(stages.size() == 5, "missing engine stage spans (found " +
                                std::to_string(stages.size()) + "/5)");
  std::printf("trace ok: %zu spans, 5 engine stages\n", complete);
  return 0;
}

int check_metrics(const std::string& path) {
  const value doc = sdft::json::parse(slurp(path));
  check(doc.is_object(), "metrics file is not a JSON object");
  // The canonical engine_stats vocabulary (engine_stats::metrics()).
  const char* required[] = {
      "prep.seconds",             "prep.nodes_before",
      "prep.nodes_after",         "prep.nodes_eliminated",
      "prep.atleast_lowered",     "prep.constants_folded",
      "prep.gates_coalesced",     "prep.duplicates_merged",
      "prep.common_args_merged",  "prep.absorptions",
      "prep.passes",              "prep.modules",
      "prep.module_cutsets",
      "engine.translate_seconds", "engine.generate_seconds",
      "engine.quantify_seconds",  "engine.sum_seconds",
      "engine.total_seconds",     "engine.cutsets",
      "mocus.partials_expanded",  "mocus.cutoff_discarded",
      "bdd.nodes",                "quant.static_cutsets",
      "quant.dynamic_cutsets",    "quant.failed",
      "quant.lumped_orbits",      "quant.lumped_cutsets",
      "quant.packed_key_chains",  "quant.vector_key_chains",
      "transient.steps_saved",    "quant.cache_hit",
      "quant.cache_miss",         "quant.cache_entries",
      "quant.cache_hit_rate",     "quant.cache_evictions",
      "struct_cache.hits",        "struct_cache.misses",
      "struct_cache.evictions",   "struct_cache.entries",
      "pool.threads",
      "mocus.threads",            "mocus.tasks",
      "mocus.steals",             "mocus.occupancy",
      "quant.tasks",              "quant.steals",
      "pool.occupancy",
      "scenario.compile_seconds", "scenario.quantify_seconds",
      "scenario.cutset_seconds",  "scenario.total_seconds",
      "scenario.sequences",       "scenario.end_states",
      "scenario.functional_events", "scenario.bdd_nodes",
      "scenario.gates_compiled",  "scenario.prefix_hits",
      "scenario.sequence_cutsets",
      "ccf.groups",               "ccf.events_added",
      "ccf.members_expanded",
      "uq.seconds",               "uq.samples",
      "uq.parameters",
      "mc.seconds",               "mc.trajectories",
      "mc.failures",              "mc.levels",
      "mc.replications",          "mc.estimate",
      "mc.std_error",             "mc.ci_half_width",
      "mc.relative_error",
  };
  for (const char* key : required) {
    check(doc.contains(key), std::string("missing metric '") + key + "'");
    check(doc.at(key).is_number(),
          std::string("metric '") + key + "' is not numeric");
  }
  check(doc.contains("engine.backend"), "missing engine.backend label");
  std::printf("metrics ok: %zu entries, all canonical keys present\n",
              doc.as_object().size());
  return 0;
}

int check_bench_serve(const std::string& path) {
  const value doc = sdft::json::parse(slurp(path));
  const value& sweep = doc.at("sweep");
  check(sweep.at("bit_identical").as_bool(),
        "sweep results are not bit-identical to one-shots");
  const double points = sweep.at("points").as_number();
  check(points >= 32.0, "sweep has fewer than 32 points");
  check(sweep.at("struct_cache_hits").as_number() == points,
        "not every sweep point was a structure-cache hit");
  const double speedup = sweep.at("speedup").as_number();
  check(speedup >= 5.0, "sweep speedup " + std::to_string(speedup) +
                            "x is below the 5x acceptance threshold");
  doc.at("serve").at("cold_seconds").as_number();
  doc.at("serve").at("warm_mean_seconds").as_number();
  std::printf("bench-serve ok: %.0f points, %.1fx speedup, bit-identical\n",
              points, speedup);
  return 0;
}

int check_bench_etree(const std::string& path) {
  const value doc = sdft::json::parse(slurp(path));
  check(doc.at("bit_identical").as_bool(),
        "one-pass sequence probabilities are not bit-identical to "
        "per-sequence one-shots");
  check(doc.at("thread_identical").as_bool(),
        "one-pass results differ across thread counts");
  const double sequences = doc.at("etree").at("sequences").as_number();
  check(sequences >= 16.0, "event tree has fewer than 16 sequences");
  const double compiled = doc.at("etree").at("gates_compiled").as_number();
  const double functional =
      doc.at("etree").at("functional_events").as_number();
  check(compiled >= functional,
        "shared compilation did not cover every functional-event gate");
  const double speedup = doc.at("speedup").as_number();
  check(speedup >= 3.0, "one-pass speedup " + std::to_string(speedup) +
                            "x is below the 3x acceptance threshold");
  std::printf(
      "bench-etree ok: %.0f sequences, %.1fx speedup, bit-identical\n",
      sequences, speedup);
  return 0;
}

int check_bench_mc(const std::string& path) {
  const value doc = sdft::json::parse(slurp(path));
  check(doc.at("budget").as_number() >= 1.0, "missing trajectory budget");

  // Two rare-event cases: forcing on a static industrial variant
  // (reference: exact-static BDD) and splitting on a dynamic redundant
  // group (reference: product CTMC). Splitting is structurally inert on
  // purely static models — the importance function cannot rise without
  // dynamics — which is why each variance-reduction method gets its own
  // demonstration model.
  const value& cases = doc.at("cases");
  check(cases.as_array().size() >= 2, "expected at least two bench cases");
  bool saw_forcing = false;
  bool saw_splitting = false;
  for (const value& c : cases.as_array()) {
    const std::string name = c.at("name").as_string();
    const double exact = c.at("exact").as_number();
    check(exact > 0.0,
          name + ": exact reference probability is not positive");
    check(c.at("budget").as_number() >= 1.0, name + ": missing budget");

    // Crude MC at the shared budget must demonstrate the rare-event
    // problem: zero observed failures, i.e. an empty confidence interval.
    check(c.at("crude").at("empty").as_bool(),
          name + ": crude MC observed failures at this budget; the model "
                 "is not a rare-event demonstration");

    // The variance-reduction method must bracket the exact answer.
    const value& rare = c.at("rare");
    const std::string method = rare.at("method").as_string();
    saw_forcing = saw_forcing || method == "forcing";
    saw_splitting = saw_splitting || method == "splitting";
    const double lo = rare.at("ci_low").as_number();
    const double hi = rare.at("ci_high").as_number();
    check(lo <= exact && exact <= hi,
          name + ": " + method + " CI [" + std::to_string(lo) + ", " +
              std::to_string(hi) + "] does not bracket exact " +
              std::to_string(exact));
    const double rel = rare.at("relative_error").as_number();
    check(rel > 0.0, name + ": relative error is not positive");

    // The acceptance threshold: >= 10x lower relative error than crude MC
    // at the same trajectory budget. With zero crude hits the bench scores
    // crude by its rule-of-three upper bound, so the ratio stays finite.
    const double improvement = c.at("improvement").as_number();
    check(improvement >= 10.0,
          name + ": improvement " + std::to_string(improvement) +
              "x is below the 10x acceptance threshold");
    std::printf("bench-mc case %s: exact %.3g bracketed by %s, rel err "
                "%.3g, %.0fx better than crude\n",
                name.c_str(), exact, method.c_str(), rel, improvement);
  }
  check(saw_forcing, "no case demonstrates failure forcing");
  check(saw_splitting, "no case demonstrates importance splitting");

  // Relative-error-vs-time curve entries must be well-formed.
  const value& curve = doc.at("curve");
  check(!curve.as_array().empty(), "missing relative-error-vs-time curve");
  for (const value& p : curve.as_array()) {
    p.at("case").as_string();
    check(p.at("trajectories").as_number() >= 1.0,
          "curve point without trajectories");
    check(p.at("seconds").as_number() >= 0.0, "curve point without timing");
    p.at("relative_error").as_number();
  }
  std::printf("bench-mc ok: %zu cases, %zu curve points\n",
              cases.as_array().size(), curve.as_array().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(
        stderr,
        "usage: obs_check <trace|metrics|bench-serve|bench-etree|bench-mc> "
        "<file>\n");
    return 2;
  }
  try {
    const std::string mode = argv[1];
    if (mode == "trace") return check_trace(argv[2]);
    if (mode == "metrics") return check_metrics(argv[2]);
    if (mode == "bench-serve") return check_bench_serve(argv[2]);
    if (mode == "bench-etree") return check_bench_etree(argv[2]);
    if (mode == "bench-mc") return check_bench_mc(argv[2]);
    std::fprintf(stderr, "obs_check: unknown mode '%s'\n", mode.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_check: %s\n", e.what());
    return 1;
  }
}
