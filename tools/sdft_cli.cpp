// sdft — command-line front end to the SD fault tree analysis library.
//
//   sdft static <file>                 exact + rare-event static analysis
//   sdft mcs <file> [options]          minimal cutsets (on FT-bar for SD)
//   sdft analyze <file> [options]      the paper's SD pipeline (§V)
//   sdft exact <file> [options]        exact product-CTMC semantics (§III)
//   sdft importance <file> [options]   Fussell-Vesely ranking
//   sdft classify <file>               trigger-gate classification (§V-A)
//   sdft convert <file>                echo the normalised model text
//   sdft sweep <file> [options]        batched parameter sweep over one
//                                      cached structure (--sweep-param /
//                                      --sweep-spec)
//   sdft etree <file> [options]        one-pass event-tree scenario
//                                      quantification (sequences, end
//                                      states, CCF, --uq-samples bands;
//                                      --sweep-* re-evaluates points off
//                                      the compiled scenario)
//   sdft serve [<file>] [options]      resident NDJSON analysis service
//                                      (--stdio default, or --port N;
//                                      preload models with --model)
//
// Options: --horizon H (hours, default 24), --cutoff C (default 0),
//          --threads N, --mode exact|under|over, --top K (rows to print),
//          --details (per-cutset breakdown),
//          --backend mocus|bdd|mc (cutset source, or Monte-Carlo
//          estimation; mc reports a confidence interval and composes with
//          --mc-method crude|forcing|splitting, --mc-trajectories N,
//          --mc-batch N, --mc-levels N, --mc-replications N, --seed S),
//          --bdd-ordering dfs|natural|weight|sift (BDD variable order),
//          --exact-static (exact static FT-bar probability via one BDD),
//          --no-cache,
//          --no-prep (mandatory normalisation only) and per-rewrite
//          --no-prep-{fold,coalesce,merge,factor,absorb,modules},
//          --stats (engine instrumentation: stage times, backend
//          counters, quantification-cache hits/misses, pool occupancy),
//          --no-struct-cache (regenerate cutsets per analysis),
//          --struct-cache-entries N / --quant-cache-entries N (LRU bounds),
//          --sweep-param NAME=lo:hi:N[:log|:linear] (repeatable; the grid
//          is the cartesian product), --sweep-spec FILE (JSON spec),
//          --uq-samples N (etree parameter-uncertainty samples; seeded by
//          --seed, bit-identical at any thread count),
//          --port N / --stdio / --model name=path (serve transports),
//          --trace-json FILE (Chrome trace_event spans of the run),
//          --metrics-json FILE (obs metric registry dump; see DESIGN.md §11).
//
// Exit codes: 0 success, 1 model/numeric error (sdft::error), 2 usage or
// unexpected internal error.
//
// Files use the SD fault tree text format (sdft/parser.hpp); purely static
// models are ordinary SD files without dyn/trigger lines.

#include <cstdio>
#include <cstring>
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <iostream>

#include "bdd/ft_bdd.hpp"
#include "engine/engine.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "etree/scenario.hpp"
#include "serve/service.hpp"
#include "serve/transport.hpp"
#include "core/risk_measures.hpp"
#include "ft/modules.hpp"
#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"
#include "obs/obs.hpp"
#include "prep/prep.hpp"
#include "product/product_ctmc.hpp"
#include "sdft/classify.hpp"
#include "sdft/parser.hpp"
#include "ft/openpsa.hpp"
#include "sdft/translate.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sdft;

struct cli_options {
  std::string command;
  std::string file;
  double horizon = 24.0;
  double cutoff = 0.0;
  std::size_t threads = 0;
  approx_mode mode = approx_mode::as_classified;
  std::size_t top = 20;
  bool details = false;
  bool stats = false;
  cutset_backend backend = cutset_backend::mocus;
  sdft::bdd_ordering bdd_ordering = sdft::bdd_ordering::dfs;
  bool exact_static = false;
  bool cache = true;
  bool lumping = true;
  bool early_termination = true;
  prep_options prep;
  std::size_t runs = 100'000;
  std::uint64_t seed = 1;

  // Monte-Carlo backend (--backend mc) campaign knobs; seed comes from
  // --seed, everything else from its mc_options default when not given.
  sim::mc_options mc;
  std::string trace_json;    ///< Chrome trace_event output path (empty: off)
  std::string metrics_json;  ///< metric registry dump path (empty: off)

  // Structure cache (stages 1b-2 reuse) and cache bounds.
  bool struct_cache = true;
  std::size_t struct_cache_entries = structure_cache::default_capacity;
  std::size_t quant_cache_entries = quantification_cache::default_capacity;

  // sweep command inputs (also accepted by etree: points re-evaluated
  // off the compiled scenario).
  std::vector<std::string> sweep_params;  ///< NAME=lo:hi:N[:scale] axes
  std::string sweep_spec;                 ///< JSON spec file

  // etree command inputs.
  std::size_t uq_samples = 0;  ///< parameter-uncertainty samples (0: off)

  // serve command transports.
  int port = -1;          ///< TCP port (-1: not requested; 0: ephemeral)
  bool use_stdio = false;
  std::vector<std::pair<std::string, std::string>> models;  ///< name=path
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: sdft <static|simulate|export|import|mcs|analyze|exact|importance|classify|convert|sweep|etree|serve> "
      "<file>\n"
      "            [--horizon H] [--cutoff C] [--threads N]\n"
      "            [--mode exact|under|over] [--top K] [--details]\n"
      "            [--backend mocus|bdd|mc] [--no-cache] [--stats]\n"
      "            [--mc-method crude|forcing|splitting] "
      "[--mc-trajectories N]\n"
      "            [--mc-batch N] [--mc-levels N] [--mc-replications N]\n"
      "            [--bdd-ordering dfs|natural|weight|sift] [--exact-static]\n"
      "            [--no-lumping] [--no-early-termination]\n"
      "            [--no-prep] "
      "[--no-prep-{fold,coalesce,merge,factor,absorb,modules}]\n"
      "            [--no-struct-cache] [--struct-cache-entries N]\n"
      "            [--quant-cache-entries N]\n"
      "            [--sweep-param NAME=lo:hi:N[:log|:linear]] "
      "[--sweep-spec FILE]\n"
      "            [--uq-samples N]\n"
      "            [--port N | --stdio] [--model name=path]\n"
      "            [--trace-json FILE] [--metrics-json FILE]\n");
  std::exit(2);
}

/// Usage errors with a specific complaint: message, then the usage block
/// (exit 2, distinct from model/numeric errors' exit 1).
[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "sdft: %s\n", what.c_str());
  usage();
}

cli_options parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  cli_options opt;
  opt.command = argv[1];
  int start = 2;
  // The model file is optional for serve (models can arrive via --model
  // or the protocol's load op); every other command requires it.
  if (start < argc && argv[start][0] != '-') opt.file = argv[start++];
  if (opt.file.empty() && opt.command != "serve") usage();
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--horizon") {
      opt.horizon = std::stod(next());
    } else if (arg == "--cutoff") {
      opt.cutoff = std::stod(next());
    } else if (arg == "--threads") {
      opt.threads = std::stoul(next());
    } else if (arg == "--top") {
      opt.top = std::stoul(next());
    } else if (arg == "--details") {
      opt.details = true;
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--no-cache") {
      opt.cache = false;
    } else if (arg == "--no-lumping") {
      opt.lumping = false;
    } else if (arg == "--no-early-termination") {
      opt.early_termination = false;
    } else if (arg == "--no-prep") {
      opt.prep.enabled = false;
    } else if (arg == "--no-prep-fold") {
      opt.prep.fold = false;
    } else if (arg == "--no-prep-coalesce") {
      opt.prep.coalesce = false;
    } else if (arg == "--no-prep-merge") {
      opt.prep.merge_duplicates = false;
    } else if (arg == "--no-prep-factor") {
      opt.prep.merge_common_args = false;
    } else if (arg == "--no-prep-absorb") {
      opt.prep.absorb = false;
    } else if (arg == "--no-prep-modules") {
      opt.prep.modularize = false;
    } else if (arg == "--backend") {
      if (!parse_cutset_backend(next(), opt.backend)) usage();
    } else if (arg == "--mc-method") {
      if (!sim::parse_mc_method(next(), opt.mc.method)) usage();
    } else if (arg == "--mc-trajectories") {
      opt.mc.trajectories = std::stoul(next());
    } else if (arg == "--mc-batch") {
      opt.mc.batch = std::stoul(next());
    } else if (arg == "--mc-levels") {
      opt.mc.levels = std::stoul(next());
    } else if (arg == "--mc-replications") {
      opt.mc.replications = std::stoul(next());
    } else if (arg == "--bdd-ordering") {
      const auto ordering = parse_bdd_ordering(next());
      if (!ordering) usage();
      opt.bdd_ordering = *ordering;
    } else if (arg == "--exact-static") {
      opt.exact_static = true;
    } else if (arg == "--runs") {
      opt.runs = std::stoul(next());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--trace-json") {
      opt.trace_json = next();
    } else if (arg == "--metrics-json") {
      opt.metrics_json = next();
    } else if (arg == "--no-struct-cache") {
      opt.struct_cache = false;
    } else if (arg == "--struct-cache-entries") {
      opt.struct_cache_entries = std::stoul(next());
    } else if (arg == "--quant-cache-entries") {
      opt.quant_cache_entries = std::stoul(next());
    } else if (arg == "--sweep-param") {
      opt.sweep_params.push_back(next());
    } else if (arg == "--sweep-spec") {
      opt.sweep_spec = next();
    } else if (arg == "--uq-samples") {
      opt.uq_samples = std::stoul(next());
    } else if (arg == "--port") {
      opt.port = std::stoi(next());
      if (opt.port < 0 || opt.port > 65535) {
        usage_error("--port must be in [0, 65535] (0 picks a free port)");
      }
    } else if (arg == "--stdio") {
      opt.use_stdio = true;
    } else if (arg == "--model") {
      const std::string m = next();
      const std::size_t eq = m.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == m.size()) {
        usage_error("--model needs name=path");
      }
      opt.models.emplace_back(m.substr(0, eq), m.substr(eq + 1));
    } else if (arg == "--mode") {
      const std::string mode = next();
      if (mode == "exact") {
        opt.mode = approx_mode::as_classified;
      } else if (mode == "under") {
        opt.mode = approx_mode::under_approximate;
      } else if (mode == "over") {
        opt.mode = approx_mode::over_approximate;
      } else {
        usage();
      }
    } else {
      usage();
    }
  }

  // Cross-flag conflicts (usage errors, exit 2): sweep and serve flags
  // only compose with their own commands; transports are exclusive.
  const bool sweep_flags =
      !opt.sweep_params.empty() || !opt.sweep_spec.empty();
  if (sweep_flags && opt.command != "sweep" && opt.command != "etree") {
    usage_error(
        "--sweep-param/--sweep-spec apply to the 'sweep' and 'etree' "
        "commands");
  }
  if (opt.command == "sweep" || sweep_flags) {
    if (!opt.sweep_params.empty() && !opt.sweep_spec.empty()) {
      usage_error(
          "give either --sweep-param axes or one --sweep-spec file, "
          "not both");
    }
  }
  if (opt.command == "sweep" && !sweep_flags) {
    usage_error("sweep needs --sweep-param axes or a --sweep-spec file");
  }
  if (opt.uq_samples > 0 && opt.command != "etree") {
    usage_error("--uq-samples applies to the 'etree' command");
  }
  const bool serve_flags =
      opt.port >= 0 || opt.use_stdio || !opt.models.empty();
  if (serve_flags && opt.command != "serve") {
    usage_error("--port/--stdio/--model apply to the 'serve' command");
  }
  if (opt.port >= 0 && opt.use_stdio) {
    usage_error("--port and --stdio are mutually exclusive");
  }
  return opt;
}

sd_fault_tree load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw error("cannot open '" + path + "'");
  return parse_sd_fault_tree(in);
}

/// Translates cutsets generated on a preprocessed tree back into source
/// indices (prep guarantees basic events always map).
std::vector<cutset> cutsets_to_source(const prep_result& prep,
                                      const std::vector<cutset>& sets) {
  std::vector<cutset> out = sets;
  for (cutset& c : out) {
    for (node_index& e : c) e = prep.to_source[e];
    std::sort(c.begin(), c.end());
  }
  return out;
}

std::string cutset_names(const fault_tree& ft, const cutset& c) {
  std::string out = "{";
  for (std::size_t i = 0; i < c.size(); ++i) {
    out += (i ? ", " : "") + ft.node(c[i]).name;
  }
  return out + "}";
}

int cmd_static(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  require_model(tree.dynamic_events().empty(),
                "static analysis requires a purely static model; use "
                "'analyze' for SD models");
  const fault_tree& ft = tree.structure();
  thread_pool pool(opt.threads);
  // MOCUS requires an AND/OR tree; prep lowers voting gates (and, with the
  // default options, simplifies) while preserving the exact cutset list.
  const prep_result prep = preprocess(ft, opt.prep);
  mocus_options mopts;
  mopts.cutoff = opt.cutoff;
  mopts.pool = &pool;
  const mocus_result mcs = mocus(prep.tree, mopts);
  const std::vector<cutset> cutsets = cutsets_to_source(prep, mcs.cutsets);
  std::printf("basic events:     %zu\n", ft.num_basic_events());
  std::printf("gates:            %zu\n", ft.num_gates());
  std::printf("modules:          %zu\n", prep.module_roots.size());
  std::printf("minimal cutsets:  %zu (cutoff %s)\n", cutsets.size(),
              sci(opt.cutoff).c_str());
  std::printf("rare-event:       %s\n",
              sci(rare_event_probability(ft, cutsets)).c_str());
  std::printf("min-cut bound:    %s\n",
              sci(min_cut_upper_bound(ft, cutsets)).c_str());
  std::printf("exact (BDD):      %s\n",
              sci(ft_bdd(ft, fault_tree::npos, opt.bdd_ordering).probability())
                  .c_str());
  std::printf("exact (modular):  %s\n", sci(modular_probability(ft)).c_str());
  return 0;
}

int cmd_mcs(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  const static_translation tr =
      translate_to_static(tree, opt.horizon, 1e-10);
  thread_pool pool(opt.threads);
  const prep_result prep = preprocess(tr.ft_bar, opt.prep);
  mocus_options mopts;
  mopts.cutoff = opt.cutoff;
  mopts.pool = &pool;
  const mocus_result mcs = mocus(prep.tree, mopts);
  const std::vector<cutset> cutsets = cutsets_to_source(prep, mcs.cutsets);
  std::printf("# %zu minimal cutsets (top %zu by probability)\n",
              cutsets.size(), opt.top);
  std::vector<std::pair<double, const cutset*>> ranked;
  for (const auto& c : cutsets) {
    ranked.emplace_back(cutset_probability(tr.ft_bar, c), &c);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  text_table table({"p (FT-bar)", "cutset"});
  for (std::size_t i = 0; i < ranked.size() && i < opt.top; ++i) {
    table.add_row({sci(ranked[i].first),
                   cutset_names(tr.ft_bar, *ranked[i].second)});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

void print_engine_stats(const engine_stats& s) {
  text_table table({"stage / counter", "value"});
  table.add_row({"backend", s.backend});
  if (s.backend == "mc") {
    table.add_row({"mc method", s.mc_method});
    table.add_row({"mc trajectories", std::to_string(s.mc_trajectories)});
    table.add_row({"mc failures", std::to_string(s.mc_failures)});
    if (s.mc_levels > 0) {
      table.add_row({"mc levels x replications",
                     std::to_string(s.mc_levels) + " x " +
                         std::to_string(s.mc_replications)});
    }
    table.add_row({"mc estimate", sci(s.mc_estimate)});
    table.add_row({"mc std error", sci(s.mc_std_error)});
    table.add_row({"mc CI half-width", sci(s.mc_ci_half_width)});
    char rel[32];
    std::snprintf(rel, sizeof rel, "%.3g", s.mc_relative_error);
    table.add_row({"mc relative error", rel});
    table.add_row({"mc campaign", duration_str(s.mc_seconds)});
    table.add_row({"translate", duration_str(s.translate_seconds)});
    table.add_row({"prep", duration_str(s.prep_seconds)});
    if (s.exact_static_seconds > 0) {
      table.add_row({"exact static", duration_str(s.exact_static_seconds)});
    }
    table.add_row({"total", duration_str(s.total_seconds)});
    table.add_row({"pool threads", std::to_string(s.pool_threads)});
    std::printf("%s", table.str().c_str());
    return;
  }
  table.add_row({"translate", duration_str(s.translate_seconds)});
  table.add_row({"prep", duration_str(s.prep_seconds)});
  table.add_row({"generate cutsets", duration_str(s.generate_seconds)});
  table.add_row({"quantify", duration_str(s.quantify_seconds)});
  table.add_row({"sum + statistics", duration_str(s.sum_seconds)});
  table.add_row({"total", duration_str(s.total_seconds)});
  table.add_row({"cutsets", std::to_string(s.num_cutsets) + " (" +
                                std::to_string(s.dynamic_cutsets) +
                                " dynamic, " +
                                std::to_string(s.static_cutsets) +
                                " static)"});
  table.add_row({"prep nodes", std::to_string(s.prep_nodes_before) + " -> " +
                                   std::to_string(s.prep_nodes_after) + " (" +
                                   std::to_string(s.prep_nodes_eliminated) +
                                   " eliminated)"});
  table.add_row({"prep rewrites",
                 "atleast " + std::to_string(s.prep_atleast_lowered) +
                     ", fold " + std::to_string(s.prep_constants_folded) +
                     ", coalesce " + std::to_string(s.prep_gates_coalesced) +
                     ", dup " + std::to_string(s.prep_duplicates_merged) +
                     ", factor " + std::to_string(s.prep_common_args_merged) +
                     ", absorb " + std::to_string(s.prep_absorptions) + " (" +
                     std::to_string(s.prep_passes) + " passes)"});
  table.add_row({"prep modules", std::to_string(s.prep_modules) + " (" +
                                     std::to_string(s.prep_module_cutsets) +
                                     " module cutsets)"});
  if (s.backend == "bdd") {
    table.add_row({"bdd nodes", std::to_string(s.bdd_nodes)});
    table.add_row({"bdd ordering", s.bdd_ordering + " (" +
                                       std::to_string(s.bdd_sift_swaps) +
                                       " sift swaps)"});
  } else {
    table.add_row({"mocus partials", std::to_string(s.source_partials)});
    table.add_row({"mocus subset tests",
                   std::to_string(s.subset_tests) + " (" +
                       std::to_string(s.bitset_words) + "-word keys)"});
  }
  table.add_row({"cutoff discarded", std::to_string(s.source_discarded)});
  if (s.exact_static_seconds > 0) {
    table.add_row({"exact static", duration_str(s.exact_static_seconds)});
  }
  table.add_row(
      {"failed quantifications", std::to_string(s.failed_quantifications)});
  table.add_row({"lumped orbits",
                 std::to_string(s.lumped_orbits) + " (" +
                     std::to_string(s.lumped_cutsets) + " cutsets)"});
  table.add_row({"state keys packed / vector",
                 std::to_string(s.packed_key_chains) + " / " +
                     std::to_string(s.vector_key_chains)});
  table.add_row({"uniformisation steps saved",
                 std::to_string(s.uniformisation_steps_saved)});
  char rate[32];
  std::snprintf(rate, sizeof rate, "%.1f%%", 100.0 * s.cache_hit_rate());
  table.add_row({"cache hits / misses", std::to_string(s.cache_hits) + " / " +
                                            std::to_string(s.cache_misses) +
                                            " (" + rate + " hit rate)"});
  table.add_row({"cache entries", std::to_string(s.cache_entries)});
  table.add_row({"pool threads", std::to_string(s.pool_threads)});
  char occupancy[32];
  std::snprintf(occupancy, sizeof occupancy, "%.1f%%",
                100.0 * s.mocus_occupancy);
  table.add_row({"generate threads", std::to_string(s.mocus_threads)});
  table.add_row({"generate tasks / steals",
                 std::to_string(s.mocus_tasks) + " / " +
                     std::to_string(s.mocus_steals) + " (" + occupancy +
                     " occupancy)"});
  std::printf("%s", table.str().c_str());
}

/// The engine options every pipeline command (analyze, sweep, serve)
/// derives from the shared CLI flags.
analysis_options make_analysis_options(const cli_options& opt) {
  analysis_options aopts;
  aopts.horizon = opt.horizon;
  aopts.cutoff = opt.cutoff;
  aopts.threads = opt.threads;
  aopts.mode = opt.mode;
  aopts.backend = opt.backend;
  aopts.bdd_ordering = opt.bdd_ordering;
  aopts.exact_static = opt.exact_static;
  aopts.cache_quantifications = opt.cache;
  aopts.lump_symmetry = opt.lumping;
  aopts.transient_early_termination = opt.early_termination;
  aopts.prep = opt.prep;
  aopts.use_structure_cache = opt.struct_cache;
  aopts.structure_cache_entries = opt.struct_cache_entries;
  aopts.quant_cache_entries = opt.quant_cache_entries;
  aopts.mc = opt.mc;
  aopts.mc.seed = opt.seed;
  return aopts;
}

int cmd_analyze(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  analysis_engine engine(make_analysis_options(opt));
  const analysis_result result = engine.run(tree);
  if (opt.backend == cutset_backend::mc) {
    const sim::mc_result& mc = result.mc;
    std::printf("failure probability (MC %s): %s  [horizon %gh]\n",
                sim::to_string(mc.method).c_str(), sci(mc.estimate).c_str(),
                opt.horizon);
    std::printf("95%% CI: [%s, %s]  half-width %s, relative error %.3g\n",
                sci(mc.ci_low).c_str(), sci(mc.ci_high).c_str(),
                sci(mc.ci_half_width).c_str(), mc.relative_error);
    std::printf("trajectories: %zu (%zu hits%s)\n", mc.trajectories,
                mc.failures, mc.empty() ? ", empty CI" : "");
    if (mc.levels_used > 0) {
      std::printf("splitting: %zu levels x %zu replications\n",
                  mc.levels_used, mc.replications);
    }
  } else {
    std::printf("failure probability (p_rea): %s  [horizon %gh]\n",
                sci(result.failure_probability).c_str(), opt.horizon);
    std::printf(
        "cutsets: %zu (%zu dynamic), mean dyn events %.2f (%.2f added)\n",
        result.num_cutsets, result.num_dynamic_cutsets,
        result.mean_dynamic_events, result.mean_added_dynamic_events);
  }
  if (opt.exact_static) {
    std::printf("exact static probability (BDD, ordering %s): %s\n",
                to_string(opt.bdd_ordering),
                sci(result.exact_static_probability).c_str());
  }
  if (opt.backend != cutset_backend::mc) {
    std::printf("times: translate %.2fs, MCS %.2fs, quantify %.2fs\n",
                result.translate_seconds, result.mcs_seconds,
                result.quantify_seconds);
  }
  if (opt.stats) print_engine_stats(result.stats);
  if (opt.details) {
    auto sorted = result.cutsets;
    std::sort(sorted.begin(), sorted.end(),
              [](const cutset_result& a, const cutset_result& b) {
                return a.probability > b.probability;
              });
    text_table table({"p-tilde", "dyn", "chain", "cutset"});
    for (std::size_t i = 0; i < sorted.size() && i < opt.top; ++i) {
      table.add_row({sci(sorted[i].probability),
                     std::to_string(sorted[i].num_dynamic +
                                    sorted[i].num_added_dynamic),
                     std::to_string(sorted[i].chain_states),
                     cutset_names(tree.structure(), sorted[i].events)});
    }
    std::printf("%s", table.str().c_str());
  }
  return 0;
}

int cmd_exact(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  const product_ctmc product = build_product_ctmc(tree);
  std::printf("product chain: %zu consistent states\n", product.num_states());
  std::printf("exact failure probability: %s  [horizon %gh]\n",
              sci(exact_failure_probability(tree, opt.horizon)).c_str(),
              opt.horizon);
  return 0;
}

int cmd_importance(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  analysis_options aopts;
  aopts.horizon = opt.horizon;
  aopts.cutoff = opt.cutoff;
  aopts.threads = opt.threads;
  const analysis_result result = analyze(tree, aopts);
  const auto fv = fussell_vesely_sd(tree, result);
  std::vector<std::pair<double, node_index>> ranked;
  for (const auto& [event, value] : fv) ranked.emplace_back(value, event);
  std::sort(ranked.rbegin(), ranked.rend());
  text_table table({"FV", "event", "kind"});
  for (std::size_t i = 0; i < ranked.size() && i < opt.top; ++i) {
    const node_index b = ranked[i].second;
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.4f", ranked[i].first);
    table.add_row({buf, tree.structure().node(b).name,
                   tree.is_dynamic(b) ? "dynamic" : "static"});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

int cmd_classify(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  const trigger_report report = analyze_triggers(tree);
  if (report.gates.empty()) {
    std::printf("no triggering gates\n");
    return 0;
  }
  text_table table({"trigger gate", "class", "uniform", "events"});
  for (const auto& entry : report.gates) {
    std::string events;
    for (node_index e : tree.triggered_events(entry.gate)) {
      events += (events.empty() ? "" : ", ") + tree.structure().node(e).name;
    }
    table.add_row({tree.structure().node(entry.gate).name,
                   to_string(entry.cls),
                   entry.uniform_triggering ? "yes" : "no", events});
  }
  std::printf("%s", table.str().c_str());
  std::printf("efficient per paper §V-C: %s\n",
              report.efficient ? "yes" : "no (general / non-uniform joins)");
  return 0;
}

int cmd_convert(const cli_options& opt) {
  std::printf("%s", write_sd_fault_tree(load(opt.file)).c_str());
  return 0;
}

int cmd_simulate(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  simulation_options sopts;
  sopts.runs = opt.runs;
  sopts.seed = opt.seed;
  const simulation_result r =
      simulate_failure_probability(tree, opt.horizon, sopts);
  std::printf("simulated failure probability: %s  [horizon %gh]\n",
              sci(r.estimate).c_str(), opt.horizon);
  std::printf("95%% CI: [%s, %s]  (%zu failures in %zu runs)\n",
              sci(r.ci_low).c_str(), sci(r.ci_high).c_str(), r.failures,
              r.runs);
  return 0;
}

int cmd_export(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  require_model(tree.dynamic_events().empty(),
                "Open-PSA MEF export covers static models only");
  std::printf("%s", write_openpsa(tree.structure()).c_str());
  return 0;
}

int cmd_uncertainty(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);
  analysis_options aopts;
  aopts.horizon = opt.horizon;
  aopts.cutoff = opt.cutoff;
  aopts.threads = opt.threads;
  const analysis_result result = analyze(tree, aopts);
  uncertainty_options uopts;
  uopts.samples = opt.runs;
  uopts.seed = opt.seed;
  const uncertainty_result u = uncertainty_analysis(result, uopts);
  std::printf("point estimate: %s\n", sci(u.point_estimate).c_str());
  std::printf("mean:           %s\n", sci(u.mean).c_str());
  std::printf("median:         %s\n", sci(u.median).c_str());
  std::printf("90%% band:       [%s, %s]  (%zu samples, EF %.1f)\n",
              sci(u.p05).c_str(), sci(u.p95).c_str(), u.samples.size(),
              uopts.error_factor);
  return 0;
}

int cmd_import(const cli_options& opt) {
  std::ifstream in(opt.file);
  if (!in) throw error("cannot open '" + opt.file + "'");
  std::ostringstream text;
  text << in.rdbuf();
  const fault_tree ft = parse_openpsa(text.str());
  const sd_fault_tree tree(ft);
  std::printf("%s", write_sd_fault_tree(tree).c_str());
  return 0;
}

int cmd_sweep(const cli_options& opt) {
  const sd_fault_tree tree = load(opt.file);

  // Parse (pure syntax -> usage errors, exit 2), then resolve against the
  // model (unknown/non-static events -> model errors, exit 1).
  sweep_description description;
  try {
    if (!opt.sweep_spec.empty()) {
      std::ifstream in(opt.sweep_spec);
      if (!in) {
        usage_error("cannot open sweep spec '" + opt.sweep_spec + "'");
      }
      std::ostringstream text;
      text << in.rdbuf();
      description = parse_sweep_json(text.str());
    } else {
      description = parse_sweep_ranges(opt.sweep_params);
    }
  } catch (const model_error&) {
    throw;
  } catch (const error& e) {
    usage_error(e.what());
  }
  const sweep_spec spec = resolve_sweep(description, tree);

  analysis_engine engine(make_analysis_options(opt));
  const sweep_result result = run_sweep(engine, tree, spec);

  if (opt.backend == cutset_backend::mc) {
    // MC sweeps carry a per-point confidence interval, not a point value.
    text_table table({"estimate", "ci_low", "ci_high", "rel_err", "point"});
    for (std::size_t i = 0; i < result.points.size() && i < opt.top; ++i) {
      const sim::mc_result& mc = result.points[i].mc;
      char rel[32];
      std::snprintf(rel, sizeof rel, "%.3g", mc.relative_error);
      table.add_row({sci(mc.estimate), sci(mc.ci_low), sci(mc.ci_high), rel,
                     spec.points[i].label});
    }
    std::printf("%s", table.str().c_str());
  } else {
    text_table table({"p (p_rea)", "point"});
    for (std::size_t i = 0; i < result.points.size() && i < opt.top; ++i) {
      table.add_row({sci(result.points[i].failure_probability),
                     spec.points[i].label});
    }
    std::printf("%s", table.str().c_str());
  }
  if (result.points.size() > opt.top) {
    std::printf("... %zu more points (--top to widen)\n",
                result.points.size() - opt.top);
  }
  std::printf(
      "sweep: %zu points on %zu threads in %.2fs "
      "(prime %.2fs, %zu structure-cache hits)\n",
      result.points.size(), result.threads, result.total_seconds,
      result.prime_seconds, result.struct_cache_hits);
  if (opt.stats) print_engine_stats(result.aggregate);
  return 0;
}

void print_scenario_stats(const engine_stats& s) {
  text_table table({"stage / counter", "value"});
  table.add_row(
      {"compile (CCF + BDD)", duration_str(s.scenario_compile_seconds)});
  table.add_row({"quantify", duration_str(s.scenario_quantify_seconds)});
  table.add_row({"cutsets", duration_str(s.scenario_cutset_seconds)});
  if (s.uq_samples > 0) table.add_row({"uq", duration_str(s.uq_seconds)});
  table.add_row({"total", duration_str(s.scenario_total_seconds)});
  table.add_row({"sequences / end states",
                 std::to_string(s.scenario_sequences) + " / " +
                     std::to_string(s.scenario_end_states)});
  table.add_row(
      {"functional events", std::to_string(s.scenario_functional_events)});
  table.add_row({"bdd nodes (shared)", std::to_string(s.scenario_bdd_nodes)});
  table.add_row({"gates compiled / prefix hits",
                 std::to_string(s.scenario_gates_compiled) + " / " +
                     std::to_string(s.scenario_prefix_hits)});
  table.add_row({"ccf groups",
                 std::to_string(s.ccf_groups) + " (" +
                     std::to_string(s.ccf_events_added) + " events added, " +
                     std::to_string(s.ccf_members_expanded) +
                     " members expanded)"});
  table.add_row(
      {"sequence cutsets", std::to_string(s.scenario_sequence_cutsets)});
  if (s.uq_samples > 0) {
    table.add_row({"uq samples x parameters",
                   std::to_string(s.uq_samples) + " x " +
                       std::to_string(s.uq_parameters)});
  }
  std::printf("%s", table.str().c_str());
}

int cmd_etree(const cli_options& opt) {
  std::ifstream in(opt.file);
  if (!in) throw error("cannot open '" + opt.file + "'");
  scenario_model model = parse_scenario(in);

  scenario_options sopts;
  sopts.analysis = make_analysis_options(opt);
  sopts.uq_samples = opt.uq_samples;
  sopts.uq_seed = opt.seed;

  scenario_engine engine(std::move(model), sopts);
  const scenario_result result = engine.run();
  const scenario_description& sc = engine.model().scenario;
  const bool with_mcs = sopts.quantify_cutsets &&
                        opt.backend != cutset_backend::mc;
  const bool with_uq = opt.uq_samples > 0;

  std::printf(
      "event tree '%s': %zu functional events, %zu sequences, "
      "%zu end states\n",
      sc.name.c_str(), sc.functional.size(), result.sequences.size(),
      result.end_states.size());
  std::printf("initiating event %s: p = %s\n", sc.initiating_event.c_str(),
              sci(result.initiating_probability).c_str());

  std::vector<std::string> seq_header{"sequence", "end state", "p (exact)"};
  if (with_mcs) {
    seq_header.push_back("p (MCS)");
    seq_header.push_back("cutsets");
  }
  if (with_uq) {
    seq_header.push_back("p05");
    seq_header.push_back("p50");
    seq_header.push_back("p95");
  }
  text_table seq_table(seq_header);
  for (const auto& s : result.sequences) {
    std::vector<std::string> row{s.label, s.end_state, sci(s.probability)};
    if (with_mcs) {
      row.push_back(sci(s.mcs_probability));
      row.push_back(std::to_string(s.num_cutsets));
    }
    if (with_uq) {
      row.push_back(sci(s.uq.p05));
      row.push_back(sci(s.uq.p50));
      row.push_back(sci(s.uq.p95));
    }
    seq_table.add_row(row);
  }
  std::printf("%s", seq_table.str().c_str());

  std::vector<std::string> es_header{"end state", "sequences", "p (exact)"};
  if (with_mcs) {
    es_header.push_back("p (MCS)");
    es_header.push_back("cutsets");
  }
  if (with_uq) {
    es_header.push_back("p05");
    es_header.push_back("p50");
    es_header.push_back("p95");
  }
  text_table es_table(es_header);
  for (const auto& e : result.end_states) {
    std::vector<std::string> row{e.name, std::to_string(e.num_sequences),
                                 sci(e.probability)};
    if (with_mcs) {
      row.push_back(sci(e.mcs_probability));
      row.push_back(std::to_string(e.num_cutsets));
    }
    if (with_uq) {
      row.push_back(sci(e.uq.p05));
      row.push_back(sci(e.uq.p50));
      row.push_back(sci(e.uq.p95));
    }
    es_table.add_row(row);
  }
  std::printf("%s", es_table.str().c_str());
  if (with_uq) {
    std::printf("uq: %zu samples over %zu parameters (seed %llu)\n",
                result.stats.uq_samples, result.stats.uq_parameters,
                static_cast<unsigned long long>(opt.seed));
  }

  // Parameter points: re-evaluated off the compiled scenario, one row per
  // point with the exact end-state probabilities.
  if (!opt.sweep_params.empty() || !opt.sweep_spec.empty()) {
    sweep_description description;
    try {
      if (!opt.sweep_spec.empty()) {
        std::ifstream spec_in(opt.sweep_spec);
        if (!spec_in) {
          usage_error("cannot open sweep spec '" + opt.sweep_spec + "'");
        }
        std::ostringstream text;
        text << spec_in.rdbuf();
        description = parse_sweep_json(text.str());
      } else {
        description = parse_sweep_ranges(opt.sweep_params);
      }
    } catch (const model_error&) {
      throw;
    } catch (const error& e) {
      usage_error(e.what());
    }
    const auto points = engine.evaluate_points(description);
    std::vector<std::string> header{"point"};
    for (const auto& es : engine.end_state_names()) header.push_back(es);
    text_table point_table(header);
    for (std::size_t i = 0; i < points.size() && i < opt.top; ++i) {
      std::vector<std::string> row{points[i].label};
      for (const double p : points[i].end_state_probabilities) {
        row.push_back(sci(p));
      }
      point_table.add_row(row);
    }
    std::printf("%s", point_table.str().c_str());
    if (points.size() > opt.top) {
      std::printf("... %zu more points (--top to widen)\n",
                  points.size() - opt.top);
    }
  }

  if (opt.stats) {
    print_scenario_stats(result.stats);
    if (with_mcs) print_engine_stats(result.stats);
  }
  return 0;
}

int cmd_serve(const cli_options& opt) {
  serve::analysis_service service(make_analysis_options(opt));
  if (!opt.file.empty()) service.load_file("default", opt.file);
  for (const auto& [name, path] : opt.models) {
    service.load_file(name, path);
  }
  if (opt.port >= 0) {
    serve::serve_tcp(service, static_cast<unsigned short>(opt.port),
                     std::cerr);
  } else {
    // Default transport: newline-delimited JSON over stdin/stdout.
    serve::serve_stdio(service, std::cin, std::cout);
  }
  std::fprintf(stderr,
               "sdft serve: %zu requests handled (%zu errors), %zu models\n",
               service.requests(), service.errors(), service.num_models());
  return 0;
}

int dispatch(const cli_options& opt) {
  if (opt.command == "static") return cmd_static(opt);
  if (opt.command == "mcs") return cmd_mcs(opt);
  if (opt.command == "analyze") return cmd_analyze(opt);
  if (opt.command == "exact") return cmd_exact(opt);
  if (opt.command == "importance") return cmd_importance(opt);
  if (opt.command == "classify") return cmd_classify(opt);
  if (opt.command == "convert") return cmd_convert(opt);
  if (opt.command == "simulate") return cmd_simulate(opt);
  if (opt.command == "export") return cmd_export(opt);
  if (opt.command == "import") return cmd_import(opt);
  if (opt.command == "uncertainty") return cmd_uncertainty(opt);
  if (opt.command == "sweep") return cmd_sweep(opt);
  if (opt.command == "etree") return cmd_etree(opt);
  if (opt.command == "serve") return cmd_serve(opt);
  usage();
}

void write_observability(const cli_options& opt) {
  if (!opt.trace_json.empty()) {
    std::ofstream out(opt.trace_json);
    if (!out) throw error("cannot write '" + opt.trace_json + "'");
    obs::trace_recorder::instance().write_chrome_json(out);
  }
  if (!opt.metrics_json.empty()) {
    std::ofstream out(opt.metrics_json);
    if (!out) throw error("cannot write '" + opt.metrics_json + "'");
    out << obs::metrics_registry::global().to_json() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli_options opt = parse_args(argc, argv);
    const bool observe = !opt.trace_json.empty() || !opt.metrics_json.empty();
    if (observe) {
      obs::set_enabled(true);
      obs::trace_recorder::instance().clear();
      obs::metrics_registry::global().reset();
      obs::set_thread_label("main");
    }
    const int rc = dispatch(opt);
    if (observe) write_observability(opt);
    return rc;
  } catch (const sdft::error& e) {
    // Model or numeric errors: the input (or its analysis) is at fault.
    std::fprintf(stderr, "sdft: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything else escaping main is an internal error, not bad input.
    std::fprintf(stderr, "sdft: internal error: %s\n", e.what());
    return 2;
  }
}
